import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.catalog import CPUS
from repro.machines.cpu import (
    CPUModel,
    routine_flops,
    routine_traffic,
    working_set,
)

PII = CPUS["pentium-ii-450"]
T3E = CPUS["alpha21164-450"]


def test_model_validation():
    with pytest.raises(ValueError):
        CPUModel("x", 100, 100, (1024,), (1e9,))  # missing memory bandwidth
    with pytest.raises(ValueError):
        CPUModel("x", 100, 100, (2048, 1024), (1e9, 1e9, 1e9))  # not increasing
    with pytest.raises(ValueError):
        CPUModel("x", 100, -1, (1024,), (1e9, 1e8))


def test_bandwidth_monotone_nonincreasing():
    ws = np.logspace(2, 8, 60)
    b = [PII.bandwidth_at(w) for w in ws]
    assert all(b1 >= b2 - 1e-6 for b1, b2 in zip(b, b[1:]))
    assert b[0] == pytest.approx(PII.bandwidths[0], rel=0.05)
    assert b[-1] == pytest.approx(PII.bandwidths[-1], rel=0.05)


@given(st.sampled_from(list(CPUS)), st.sampled_from(["dcopy", "daxpy", "ddot"]))
@settings(max_examples=30, deadline=None)
def test_rates_positive_and_bounded(key, routine):
    cpu = CPUS[key]
    for n in (16, 1024, 65536):
        r = cpu.blas_rate(routine, n)
        assert r > 0
        if routine != "dcopy":
            assert r <= cpu.peak_mflops * 1.01


def test_blas_time_validation():
    with pytest.raises(ValueError):
        PII.blas_time("zgemm", 10)
    with pytest.raises(ValueError):
        PII.blas_time("ddot", 0)


def test_cache_cliffs_visible():
    # In-L1 rate must exceed out-of-cache rate substantially.
    in_l1 = PII.blas_rate("daxpy", 512)  # 8 KB working set
    in_mem = PII.blas_rate("daxpy", 1 << 20)  # 16 MB
    assert in_l1 > 3 * in_mem


def test_dgemm_approaches_plateau():
    r_small = PII.blas_rate("dgemm", 4)
    r_big = PII.blas_rate("dgemm", 400)
    assert r_big > 2 * r_small
    assert r_big <= PII.dgemm_efficiency * PII.peak_mflops * 1.01


def test_overhead_dominates_tiny_calls():
    # Figure 6: small-n dgemm far below the large-n plateau.
    assert PII.blas_rate("dgemm", 2) < 0.25 * PII.blas_rate("dgemm", 200)


# --- The paper's Figure 1-6 qualitative claims --------------------------------


def test_claim_pii_l1_among_best():
    # "the PC performance for data that fit in the first level of cache
    # is among the best of the architectures examined"
    others = ["power2-66", "ppc604e-332", "r10000-195", "ultrasparc-300"]
    pii = CPUS["pentium-ii-450"].blas_rate("dcopy", 500)  # 8 KB, in L1
    for key in others:
        assert pii >= 0.95 * CPUS[key].blas_rate("dcopy", 500)


def test_claim_pii_ddot_unmatched_in_cache():
    # "the ddot performance is actually unmatched" (in-cache)
    pii = CPUS["pentium-ii-450"].blas_rate("ddot", 400)  # 6.4 KB, inside L1
    for key in ["power2-66", "ppc604e-332", "r10000-195", "ultrasparc-300"]:
        assert pii >= 0.99 * CPUS[key].blas_rate("ddot", 400)


def test_claim_pii_memory_bandwidth_competitive():
    # Out-of-cache the PII beats the Silver node and Onyx2 thanks to the
    # 100 MHz SDRAM subsystem.
    n = 1 << 20
    pii = CPUS["pentium-ii-450"].blas_rate("daxpy", n)
    assert pii > CPUS["ppc604e-332"].blas_rate("daxpy", n)
    assert pii > CPUS["r10000-195"].blas_rate("daxpy", n)


def test_claim_t3e_p2sc_superior():
    # "the T3E and the SP2-P2SC nodes being superior to all the other
    # architectures tested" (large-size dgemm / overall).
    for key in ["pentium-ii-450", "ppc604e-332", "r10000-195", "ultrasparc-300", "power2-66"]:
        assert T3E.blas_rate("dgemm", 300) > CPUS[key].blas_rate("dgemm", 300)
        assert CPUS["p2sc-160"].blas_rate("dgemm", 300) > CPUS[key].blas_rate(
            "dgemm", 300
        ) or key == "ppc604e-332"


def test_claim_pii_dgemm_peak_lowest():
    # "the PC peak ... is 450 MFlop/s, while most of the other machines
    # have higher peaks ... not surprising that the PC curve is lower".
    pii = CPUS["pentium-ii-450"].blas_rate("dgemm", 400)
    assert pii < T3E.blas_rate("dgemm", 400)
    assert pii < CPUS["p2sc-160"].blas_rate("dgemm", 400)


# --- Table 1 application rates --------------------------------------------------


def test_table1_ordering_from_app_rates():
    # Serial bluff-body time ordering: P2SC < PII ~ T3E < Onyx2 < AP3000
    # < Silver < Thin2 (Table 1).
    r = {k: CPUS[k].app_mflops for k in CPUS}
    assert r["p2sc-160"] > r["pentium-ii-450"]
    assert abs(r["alpha21164-450"] - r["pentium-ii-450"]) / r["pentium-ii-450"] < 0.05
    assert r["pentium-ii-450"] > r["r10000-195"] > r["ultrasparc-300"]
    assert r["ultrasparc-300"] > r["ppc604e-332"] > r["power2-66"]


def test_app_rate_consistent_with_kernel_model():
    # The calibrated application rate must lie within the envelope the
    # kernel model spans (sanity: not above peak, not below a tenth of
    # the kernel mix).
    for key, cpu in CPUS.items():
        mix = cpu.dns_sustained_mflops(2e6)
        assert cpu.app_mflops <= cpu.peak_mflops
        assert cpu.app_mflops > 0.1 * mix
        assert cpu.app_mflops < 10 * mix


def test_app_time_scaling():
    t1 = PII.app_time(1e9)
    t2 = PII.app_time(2e9)
    assert t2 == pytest.approx(2 * t1)
    with pytest.raises(ValueError):
        PII.app_time(-1.0)


def test_routine_helpers():
    assert routine_flops("dgemm", 10) == 2000
    assert routine_traffic("dcopy", 100) == 1600
    assert working_set("dgemv", 10) == 8 * 120
