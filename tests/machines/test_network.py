import pytest

from repro.machines.catalog import NETWORKS
from repro.machines.network import NetworkModel

ETH = NETWORKS["RoadRunner, eth-internode"]
MYR = NETWORKS["RoadRunner, myr-internode"]
T3E = NETWORKS["T3E"]


def test_validation():
    with pytest.raises(ValueError):
        NetworkModel("x", -1.0, 1e6)
    with pytest.raises(ValueError):
        NetworkModel("x", 10.0, 0.0)
    with pytest.raises(ValueError):
        T3E.send_time(-1)


def test_send_time_structure():
    n = NetworkModel("t", latency_us=100, bandwidth=10e6)
    assert n.send_time(0) == pytest.approx(100e-6)
    assert n.send_time(10_000_000) == pytest.approx(100e-6 + 1.0)


def test_rendezvous_step():
    n = NetworkModel("t", 10, 100e6, eager_threshold=1024, rendezvous_extra_us=50)
    assert n.send_time(2048) - n.send_time(1024) > 50e-6


def test_pingpong_bandwidth_asymptote():
    for net in NETWORKS.values():
        bw = net.pingpong_bandwidth(64 * 1024 * 1024)
        assert bw == pytest.approx(net.bandwidth / 1e6, rel=0.05)
    assert T3E.pingpong_bandwidth(0) == 0.0


def test_claim_ethernet_high_latency_low_bandwidth():
    # Figure 7: RoadRunner ethernet has the worst latency; Fast Ethernet
    # bandwidth ceiling ~11 MB/s, half of most machines or less.
    for name, net in NETWORKS.items():
        if "eth" not in name and "Muses" not in name:
            assert ETH.latency_us > net.latency_us
    assert NETWORKS["Muses, LAM"].bandwidth < 12.5e6  # Fast Ethernet peak


def test_claim_lam_beats_mpich_after_tuning():
    assert (
        NETWORKS["Muses, LAM"].latency_us < NETWORKS["Muses, MPICH"].latency_us
    )


def test_claim_myrinet_latency_competitive():
    # "The inter-node myrinet network is comparable to the SP2-Silver
    # nodes and better than the AP3000 and SP2-Thin with respect to
    # latency."
    assert MYR.latency_us <= NETWORKS["SP2-Silver, internode"].latency_us * 1.1
    assert MYR.latency_us < NETWORKS["AP3000"].latency_us
    assert MYR.latency_us < NETWORKS["SP2-Thin2"].latency_us


def test_claim_myrinet_bandwidth_low_at_large_messages():
    # "The bandwidth recorded, though, is lower than most systems, apart
    # from the SP2-Thin2."
    big = 8 << 20
    myr = MYR.pingpong_bandwidth(big)
    assert myr < NETWORKS["SP2-Silver, internode"].pingpong_bandwidth(big)
    assert myr < NETWORKS["T3E"].pingpong_bandwidth(big)
    assert myr < NETWORKS["AP3000"].pingpong_bandwidth(big)
    assert myr > 0.9 * NETWORKS["SP2-Thin2"].pingpong_bandwidth(big)


def test_alltoall_time_grows_with_procs():
    for net in (ETH, MYR, T3E):
        t4 = net.alltoall_time(4, 10000)
        t8 = net.alltoall_time(8, 10000)
        assert t8 > t4 > 0
    assert T3E.alltoall_time(1, 100) == 0.0


def test_claim_t3e_alltoall_dominates():
    # "Apart from the T3E, which is 3 times higher than the rest..."
    m = 1 << 20
    t3e = T3E.alltoall_avg_bandwidth(8, m)
    for name in ("AP3000", "SP2-Silver, internode", "RoadRunner, myr-internode"):
        assert t3e > 2.0 * NETWORKS[name].alltoall_avg_bandwidth(8, m)


def test_claim_ethernet_alltoall_saturates():
    # Congestion: per-process Alltoall bandwidth on the ethernet cluster
    # degrades sharply as P grows; Myrinet holds steady at small P.
    m = 64 * 1024
    eth4 = ETH.alltoall_avg_bandwidth(4, m)
    eth16 = ETH.alltoall_avg_bandwidth(16, m)
    assert eth16 < 0.6 * eth4
    myr4 = MYR.alltoall_avg_bandwidth(4, m)
    myr16 = MYR.alltoall_avg_bandwidth(16, m)
    assert myr16 > 0.8 * myr4


def test_allreduce_and_barrier():
    t2 = T3E.allreduce_time(2, 8)
    t8 = T3E.allreduce_time(8, 8)
    assert t8 == pytest.approx(3 * t2, rel=1e-9)  # log2(8)/log2(2) hops
    assert T3E.barrier_time(8) == pytest.approx(t8)
    assert T3E.allreduce_time(1, 8) == 0.0


def test_cpu_overhead_only_on_tcp_networks():
    assert ETH.cpu_time_for_bytes(1e6) > 0
    assert MYR.cpu_time_for_bytes(1e6) == 0.0
    assert T3E.cpu_time_for_bytes(1e6) == 0.0


def test_effective_capacity_cap():
    assert ETH.effective_capacity(16) == pytest.approx(ETH.aggregate_capacity)
    assert ETH.effective_capacity(16) < 16 * ETH.bandwidth
    assert MYR.effective_capacity(4) == pytest.approx(4 * 33e6)


def test_single_rank_alltoall_charges_self_copy():
    """nprocs < 2 is not free on a kernel-mediated network: MPI still
    performs the local copy through the protocol stack."""
    assert ETH.alltoall_time(1, 65536) == pytest.approx(
        ETH.cpu_time_for_bytes(65536)
    )
    assert ETH.alltoall_time(1, 65536) > 0.0
    assert ETH.alltoall_time(1, 0) == 0.0
    # OS-bypass networks pay no protocol-stack copy cost.
    assert MYR.alltoall_time(1, 65536) == 0.0
    assert T3E.alltoall_time(1, 65536) == 0.0


def test_alltoall_avg_bandwidth_goldens():
    """Pin Figure 8's metric on the two RoadRunner fabrics: the numbers
    these exact model parameters produce.  Ethernet halves from 4 to 8
    processors (the saturation of Table 2); Myrinet's non-blocking
    fabric holds flat.  Any drift means the pricing model changed."""
    m = 65536
    assert ETH.alltoall_avg_bandwidth(4, m) == pytest.approx(
        1.833728790795541, rel=1e-12
    )
    assert ETH.alltoall_avg_bandwidth(8, m) == pytest.approx(
        0.9204701229241108, rel=1e-12
    )
    assert MYR.alltoall_avg_bandwidth(4, m) == pytest.approx(
        32.50891380813516, rel=1e-12
    )
    assert MYR.alltoall_avg_bandwidth(8, m) == pytest.approx(
        32.50891380813516, rel=1e-12
    )
