"""Smoke tests: every CLI entry point runs and prints its artifact."""

import pytest


def test_serial_bluff_main(capsys):
    from repro.apps import serial_bluff

    out = serial_bluff.main([])
    assert "Table 1" in out
    assert "Pentium II" in out


def test_nektar_f_main(capsys):
    from repro.apps import nektar_f_bench

    out = nektar_f_bench.main(["--breakdown", "--procs", "4"])
    assert "Table 2" in out
    assert "Figures 13-14" in out


def test_ale_main(capsys):
    from repro.apps import ale_bench

    out = ale_bench.main(["--breakdown", "16"])
    assert "Table 3" in out
    assert "Figures 15-16" in out


def test_cost_main(capsys):
    from repro.apps import cost_of_ownership

    out = cost_of_ownership.main(["--procs", "4"])
    assert "cost-effectiveness" in out


@pytest.mark.parametrize("figure", ["7", "8"])
def test_kernel_report_main(capsys, figure):
    from repro.apps import kernel_report

    out = kernel_report.main(["--figure", figure])
    assert "Figure" in out


def test_repro_module_menu(capsys):
    from repro.__main__ import main

    assert main([]) == 0
    captured = capsys.readouterr()
    assert "Fact or Fiction" in captured.out
