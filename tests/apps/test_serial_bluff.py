import pytest

from repro.apps.pricing import STAGE_KINDS, price_stages, total_time
from repro.apps.serial_bluff import (
    TABLE1_PAPER,
    figure12,
    measure_reduced,
    paper_stage_flops,
    table1,
)
from repro.machines.catalog import CPUS
from repro.ns.stages import STAGES


@pytest.fixture(scope="module")
def measured():
    return measure_reduced(steps=2, warmup=2, m=3, nr=1, order=4)


def test_measure_reduced_structure(measured):
    assert set(measured["stage_flops"]) == set(STAGES)
    assert all(f > 0 for f in measured["stage_flops"].values())
    assert measured["bandwidth"] > 0
    assert measured["ndof"] > 100


def test_pricing_validation():
    cpu = CPUS["pentium-ii-450"]
    secs = price_stages(cpu, {s: 1e6 for s in STAGES})
    assert set(secs) == set(STAGES)
    assert all(v > 0 for v in secs.values())
    with pytest.raises(ValueError):
        price_stages(cpu, {"5:pressure-solve": -1.0})
    assert total_time(secs) == pytest.approx(sum(secs.values()))


def test_stage_kinds_cover_all_stages():
    assert set(STAGE_KINDS) == set(STAGES)


def test_paper_stage_flops_larger_than_reduced():
    measured = measure_reduced(steps=2)
    paper = paper_stage_flops(measured)
    for s in STAGES:
        assert paper[s] > measured["stage_flops"][s]


def test_table1_reproduces_paper_ordering():
    rows = {name: model for name, model, _ in table1()}
    # Normalised to the PII anchor.
    assert rows["Pentium II, 450MHz"] == pytest.approx(0.81)
    # The headline claim: only P2SC beats the PC; T3E is comparable.
    assert rows["P2SC, 160MHz"] < rows["Pentium II, 450MHz"]
    assert rows["Alpha 21164A, 450MHz (T3E)"] == pytest.approx(
        rows["Pentium II, 450MHz"], rel=0.2
    )
    for slow in (
        "Power2, 66MHz (Thin2)",
        "PowerPC 604e, 332MHz (Silver)",
        "UltraSPARC, 300MHz (AP3000)",
        "R10000, 195MHz (Onyx2)",
    ):
        assert rows[slow] > rows["Pentium II, 450MHz"]


def test_table1_within_factor_of_paper():
    for name, model, paper in table1():
        assert model == pytest.approx(paper, rel=0.45), name


def test_figure12_structure():
    fig = figure12()
    assert len(fig) == 2
    for machine, pct in fig.items():
        assert set(pct) == set(STAGES)
        assert sum(pct.values()) == pytest.approx(100.0)
        # The paper's headline: the two solves dominate the timestep,
        # with RHS setup next.
        solves = pct["5:pressure-solve"] + pct["7:viscous-solve"]
        rhs = pct["4:pressure-rhs"] + pct["6:viscous-rhs"]
        assert solves > 35.0
        assert rhs > 10.0
        assert solves > rhs
    _ = TABLE1_PAPER
