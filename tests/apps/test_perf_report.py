"""perf_report CLI: trajectories over the run ledger, drift gating.

The acceptance scenario: a configuration with a 3-run history plus a
fourth run whose host timing doubled must be flagged as a regression
(and ``--strict`` must turn that into a nonzero exit).
"""

import pytest

from repro.apps import perf_report
from repro.obs.runlog import RunLedger, config_fingerprint

CFG = {"mesh": "bluff", "order": 8, "nprocs": 16, "smoke": True}


@pytest.fixture()
def regressed_ledger(tmp_path):
    """3 steady runs + a 4th whose elapsed_s doubled (values steady)."""
    path = tmp_path / "RUNLOG.jsonl"
    lg = RunLedger(path)
    for elapsed in (1.0, 1.05, 0.98, 2.0):
        lg.append(
            "scaling_bench",
            CFG,
            report={"wall_virtual": 3.25, "elapsed_s": elapsed},
        )
    return lg


def test_regression_flagged_against_three_run_history(regressed_ledger):
    text, findings = perf_report.render_perf_report(regressed_ledger)
    assert len(findings) == 1
    f = findings[0]
    assert f["severity"] == "regression"
    assert f["key"] == "elapsed_s"
    assert f["ratio"] == pytest.approx(2.0)
    assert f["fingerprint"] == config_fingerprint(CFG)
    assert "[regression] elapsed_s" in text
    assert "1 timing regression(s)" in text


def test_trajectory_table_shows_every_run(regressed_ledger):
    text, _ = perf_report.render_perf_report(regressed_ledger)
    assert f"scaling_bench @ {config_fingerprint(CFG)} (4 run(s))" in text
    # Every run is one row, keyed 0..3, with the headline timing column.
    for i in range(4):
        assert f"| {i} |" in text
    assert "elapsed_s" in text


def test_steady_history_reports_no_findings(tmp_path):
    lg = RunLedger(tmp_path / "lg.jsonl")
    for elapsed in (1.0, 1.1, 0.95):
        lg.append("fourier_bench", CFG, report={"elapsed_s": elapsed})
    text, findings = perf_report.render_perf_report(lg)
    assert findings == []
    assert "steady: no drift against history" in text


def test_deterministic_drift_reported(tmp_path):
    lg = RunLedger(tmp_path / "lg.jsonl")
    lg.append("solve_bench", CFG, report={"wall_virtual": 2.0})
    lg.append("solve_bench", CFG, report={"wall_virtual": 2.5})
    text, findings = perf_report.render_perf_report(lg)
    assert [f["severity"] for f in findings] == ["drift"]
    assert "deterministic key changed" in text
    assert "1 deterministic drift(s)" in text


def test_filters_by_bench_and_fingerprint(regressed_ledger, tmp_path):
    other_cfg = dict(CFG, nprocs=32)
    regressed_ledger.append("other_bench", other_cfg, report={"v": 1})
    text, findings = perf_report.render_perf_report(
        regressed_ledger, bench="scaling_bench"
    )
    assert "other_bench" not in text and len(findings) == 1
    text, _ = perf_report.render_perf_report(
        regressed_ledger, fingerprint=config_fingerprint(other_cfg)
    )
    assert "other_bench" in text and "scaling_bench" not in text


def test_main_strict_gates_on_regression(regressed_ledger, capsys, tmp_path):
    out = tmp_path / "perf_report.txt"
    rc = perf_report.main(
        [
            "--ledger",
            str(regressed_ledger.path),
            "--strict",
            "--out",
            str(out),
        ]
    )
    assert rc == 1
    captured = capsys.readouterr().out
    assert "[regression] elapsed_s" in captured
    assert out.read_text().strip() in captured


def test_main_not_strict_returns_zero(regressed_ledger, capsys):
    assert perf_report.main(["--ledger", str(regressed_ledger.path)]) == 0
    capsys.readouterr()


def test_main_missing_ledger_is_usage_error(tmp_path, capsys):
    # Distinct from a gate failure: the report never ran.
    rc = perf_report.main(
        ["--ledger", str(tmp_path / "nope.jsonl"), "--strict"]
    )
    assert rc == 2
    assert "run ledger not found" in capsys.readouterr().err


def test_main_empty_ledger_is_clean(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    rc = perf_report.main(["--ledger", str(path), "--strict"])
    assert rc == 0
    assert "no matching records" in capsys.readouterr().out


def test_main_corrupt_ledger_is_usage_error(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": 1, "bench": "x"\n')
    rc = perf_report.main(["--ledger", str(path), "--strict"])
    assert rc == 2
    assert "corrupt ledger line" in capsys.readouterr().err


def test_median_reference_excludes_latest_run(tmp_path):
    # History [1.0, 3.0, 5.0]: the reference must be median(1.0, 3.0)
    # = 2.0, never median(1.0, 3.0, 5.0) = 3.0 — the run under test
    # must not dampen its own comparison.
    lg = RunLedger(tmp_path / "lg.jsonl")
    for elapsed in (1.0, 3.0, 5.0):
        lg.append("scaling_bench", CFG, report={"elapsed_s": elapsed})
    _text, findings = perf_report.render_perf_report(lg)
    assert len(findings) == 1
    f = findings[0]
    assert f["reference"] == pytest.approx(2.0)
    assert f["ratio"] == pytest.approx(2.5)
    assert f["nref"] == 2
    assert f["severity"] == "regression"


def test_two_run_history_downgraded_to_suspect(tmp_path, capsys):
    # nref=1: a single reference sample compares but cannot gate.
    lg = RunLedger(tmp_path / "lg.jsonl")
    for elapsed in (1.0, 2.0):
        lg.append("scaling_bench", CFG, report={"elapsed_s": elapsed})
    text, findings = perf_report.render_perf_report(lg)
    assert [f["severity"] for f in findings] == ["suspect-regression"]
    assert findings[0]["nref"] == 1
    assert "1 low-confidence (nref=1) finding(s)" in text
    # --strict must NOT gate on suspect-* findings.
    assert perf_report.main(["--ledger", str(lg.path), "--strict"]) == 0
    capsys.readouterr()


def test_shared_fingerprint_histories_not_pooled(tmp_path):
    # Two benches writing the same config must keep separate
    # trajectories: bench A's steady history must not absorb bench B's
    # regression (the latent pooling bug the campaign engine exposed).
    lg = RunLedger(tmp_path / "lg.jsonl")
    for elapsed in (1.0, 1.0, 1.0):
        lg.append("bench_a", CFG, report={"elapsed_s": elapsed})
    for elapsed in (1.0, 1.0, 4.0):
        lg.append("bench_b", CFG, report={"elapsed_s": elapsed})
    text, findings = perf_report.render_perf_report(lg)
    assert len(findings) == 1
    assert findings[0]["severity"] == "regression"
    assert f"bench_a @ {config_fingerprint(CFG)} (3 run(s))" in text
    assert f"bench_b @ {config_fingerprint(CFG)} (3 run(s))" in text
