import pytest

from repro.apps.ale_bench import TABLE3_PAPER, figure15_16, step_times as ale_times, table3
from repro.apps.nektar_f_bench import (
    TABLE2_PAPER,
    figure13_14,
    message_bytes,
    step_times,
    table2,
)
from repro.ns.stages import STAGES


# ---- Table 2 / Figures 13-14 -------------------------------------------------


def test_message_bytes_shrink_with_p():
    # Weak scaling: m = Gamma/P x Nz/P with Nz = 2P -> m ~ 1/P.
    assert message_bytes(4) == pytest.approx(message_bytes(8) * 2, rel=1e-12)


def test_table2_ethernet_saturates_above_4_procs():
    # "the ethernet-based network seems to saturate above 8 processors"
    eth = {p: step_times("RoadRunner eth.", p)["wall"] for p in (2, 4, 8, 16, 32)}
    assert eth[16] > 1.8 * eth[4]
    assert eth[32] > 3.0 * eth[4]
    # Myrinet stays flat out to 64.
    myr = {p: step_times("RoadRunner myr.", p)["wall"] for p in (2, 64)}
    assert myr[64] < 1.2 * myr[2]


def test_table2_ethernet_cpu_time_inflates():
    # TCP busy-wait and protocol overhead inflate the *CPU* column too.
    t4 = step_times("RoadRunner eth.", 4)
    t16 = step_times("RoadRunner eth.", 16)
    assert t16["cpu"] > 1.2 * t4["cpu"]
    assert t16["wall"] > t16["cpu"]  # but wall grows faster


def test_table2_supercomputers_flat():
    for system in ("NCSA", "SP2-Silver", "AP3000"):
        t2 = step_times(system, 2)["wall"]
        t16 = step_times(system, 16)["wall"]
        assert t16 < 1.15 * t2


def test_table2_rows_cover_paper():
    rows = table2()
    npaper = sum(len(v) for v in TABLE2_PAPER.values())
    assert len(rows) == npaper


def test_table2_matches_paper_within_factor2():
    rows = table2()
    for p, system, model, paper in rows:
        mc, mw = (float(x) for x in model.split("/"))
        pc, pw = (float(x) for x in paper.split("/"))
        assert mc == pytest.approx(pc, rel=1.0), (p, system, "cpu")
        assert mw == pytest.approx(pw, rel=1.0), (p, system, "wall")


def test_figure13_14_structure():
    fig = figure13_14(nprocs=4)
    assert len(fig) == 8  # 4 systems x cpu/wall
    for label, pct in fig.items():
        assert set(pct) == set(STAGES)
        assert sum(pct.values()) == pytest.approx(100.0)
    # Step 2 dominates, and more so in wall-clock on Ethernet
    # ("step 2 takes as much as 60% of the time").
    eth_wall = fig["RoadRunner eth. (wall)"]["2:nonlinear"]
    eth_cpu = fig["RoadRunner eth. (cpu)"]["2:nonlinear"]
    ncsa_wall = fig["NCSA (wall)"]["2:nonlinear"]
    assert eth_wall > eth_cpu - 1e-9
    assert eth_wall > ncsa_wall
    assert eth_wall > 40.0  # "step 2 takes as much as 60%" at higher P


# ---- Table 3 / Figures 15-16 ----------------------------------------------------


def test_table3_strong_scaling_shape():
    ncsa = {p: ale_times("NCSA", p)["cpu"] for p in (16, 32, 64, 128)}
    # Times drop with P (dof fixed).
    assert ncsa[32] < ncsa[16]
    assert ncsa[64] < ncsa[32]
    assert ncsa[128] < ncsa[64]
    # The 16->32 jump includes the 195->250 MHz processor switch the
    # paper's footnote describes: better than 2x.
    assert ncsa[16] / ncsa[32] > 2.0


def test_table3_memory_pressure_penalty():
    thin2 = ale_times("SP2-Thin2", 16)
    silver = ale_times("SP2-Silver", 16)
    assert thin2["penalty"] > 1.3
    assert silver["penalty"] <= thin2["penalty"]
    assert thin2["cpu"] > 1.8 * silver["cpu"]


def test_table3_16p_pc_cluster_wins():
    # "For 16 processors, the PC cluster is faster than the rest."
    rr = ale_times("RoadRunner myr.", 16)["cpu"]
    for system in ("AP3000", "NCSA", "SP2-Silver", "SP2-Thin2"):
        assert rr <= ale_times(system, 16)["cpu"] * 1.01


def test_table3_matches_paper_within_factor2():
    scale_rows = table3()
    for p, system, model, paper in scale_rows:
        mc, _ = (float(x) for x in model.split("/"))
        pc, _ = (float(x) for x in paper.split("/"))
        assert mc == pytest.approx(pc, rel=0.8), (p, system)
    npaper = sum(len(v) for v in TABLE3_PAPER.values())
    assert len(scale_rows) == npaper


def test_figure15_16_structure():
    for p in (16, 64):
        fig = figure15_16(p)
        for label, pct in fig.items():
            assert set(pct) == {"a", "b", "c"}
            assert sum(pct.values()) == pytest.approx(100.0)
            # Solve groups dominate; c (with the extra mesh-velocity
            # Helmholtz) exceeds b.
            assert pct["b"] + pct["c"] > 85.0
            assert pct["c"] > pct["b"]
