import pytest

from repro.apps.kernel_report import report
from repro.apps.matrix_structure import figure9, figure10, figure11


@pytest.mark.parametrize("figure", [1, 2, 3, 4, 5, 6])
def test_kernel_report_blas_figures(figure):
    out = report(figure, "left", max_rows=5)
    assert "Figure" in out
    assert "Muses" in out or "Pentium" in out
    right = report(figure, "right", max_rows=5)
    assert "T3E" in right


def test_kernel_report_fig7():
    out = report(7, max_rows=4)
    assert "latency" in out
    assert "bandwidth" in out
    assert "Muses MPICH" in out or "Muses" in out


def test_kernel_report_fig8():
    out = report(8, procs=8, max_rows=4)
    assert "8 processors" in out


def test_kernel_report_unknown_figure():
    with pytest.raises(ValueError):
        report(9)


def test_figure9_mode_tables():
    out = figure9()
    assert "15 modes" in out
    assert "25 modes" in out
    assert "v0" in out and "i1_1" in out


def test_figure10_spy_plots():
    out = figure10()
    assert "boundary dofs first" in out
    assert "x" in out and "." in out
    # Triangle order 4: 15x15 spy block present.
    tri_block = out.split("\n\n")[0]
    spy_lines = [
        line for line in tri_block.splitlines() if set(line) <= {"x", "."} and line
    ]
    assert len(spy_lines) == 15
    assert all(len(line) == 15 for line in spy_lines)


def test_figure11_mesh_summaries():
    out = figure11()
    assert "bluff-body" in out
    assert "NACA 4420" in out
    assert "wall sides" in out


def test_mains_run(capsys):
    from repro.apps import kernel_report, matrix_structure

    kernel_report.main(["--figure", "6"])
    matrix_structure.main()
    captured = capsys.readouterr()
    assert "Figure" in captured.out
