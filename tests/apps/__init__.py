# test package
