"""Repo-wide CLI exit-code convention (repro.util.cli).

Every bench/report entry point distinguishes three outcomes: 0 clean,
1 gate failure, 2 usage error (never ran).  CI tells "the gate fired"
apart from "you invoked me wrong" purely by exit code, so the codes
are pinned here across the different CLI families.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.apps import trace_report
from repro.campaign.client import run_cli
from repro.util.cli import EXIT_GATE, EXIT_OK, EXIT_USAGE, usage_error

REPO = Path(__file__).resolve().parents[2]


def _load_check_regression():
    path = REPO / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


# ------------------------------------------------------------------ run_cli


def test_run_cli_clean_main_is_zero():
    assert run_cli(lambda argv: {"ok": True}, []) == EXIT_OK


def test_run_cli_gate_failure_is_one(capsys):
    def main(argv):
        assert False, "wall_virtual drifted"

    assert run_cli(main, []) == EXIT_GATE
    assert "gate failure: wall_virtual drifted" in capsys.readouterr().err


def test_run_cli_unreadable_input_is_two(capsys):
    def main(argv):
        raise OSError("No such file or directory: 'BENCH.json'")

    assert run_cli(main, []) == EXIT_USAGE
    assert "error:" in capsys.readouterr().err


def test_usage_error_helper(capsys):
    assert usage_error("boom") == EXIT_USAGE
    assert capsys.readouterr().err == "error: boom\n"


# ------------------------------------------------------- check_regression


@pytest.fixture()
def check_regression():
    return _load_check_regression()


def _bench(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_check_regression_ok_is_zero(check_regression, tmp_path, capsys):
    rep = {"config": {"n": 4}, "flops": 100, "elapsed_s": 1.0}
    fresh = _bench(tmp_path, "fresh.json", rep)
    base = _bench(tmp_path, "base.json", rep)
    assert check_regression.main([fresh, base]) == EXIT_OK
    capsys.readouterr()


def test_check_regression_gate_is_one(check_regression, tmp_path, capsys):
    fresh = _bench(tmp_path, "fresh.json", {"flops": 101})
    base = _bench(tmp_path, "base.json", {"flops": 100})
    assert check_regression.main([fresh, base]) == EXIT_GATE
    assert "deterministic metric changed" in capsys.readouterr().out


def test_check_regression_missing_file_is_two(
    check_regression, tmp_path, capsys
):
    base = _bench(tmp_path, "base.json", {"flops": 100})
    rc = check_regression.main([str(tmp_path / "nope.json"), base])
    assert rc == EXIT_USAGE
    assert "error:" in capsys.readouterr().err


def test_check_regression_unparsable_file_is_two(
    check_regression, tmp_path, capsys
):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    base = _bench(tmp_path, "base.json", {"flops": 100})
    assert check_regression.main([str(bad), base]) == EXIT_USAGE
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------- trace_report


def test_trace_report_missing_trace_is_two(tmp_path, capsys):
    rc = trace_report.cli(["--trace", str(tmp_path / "nope.json")])
    assert rc == EXIT_USAGE
    assert "error:" in capsys.readouterr().err


def test_trace_report_corrupt_trace_is_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{corrupt")
    assert trace_report.cli(["--trace", str(bad)]) == EXIT_USAGE
    assert "error:" in capsys.readouterr().err
