import pytest

from repro.apps.cost_of_ownership import (
    PRICES_1999,
    parallel_cost_table,
    serial_cost_table,
)


def test_serial_pc_wins_price_performance():
    rows = serial_cost_table()
    # Sorted best-first; the PC leads by roughly an order of magnitude.
    assert "Pentium" in rows[0][0]
    assert rows[0][-1] > 8 * rows[1][-1]


def test_parallel_cost_structure():
    rows = parallel_cost_table(4)
    by_label = {r[0]: r[-1] for r in rows}
    # PC clusters above every supercomputer.
    pc = ("Muses", "RoadRunner eth.", "RoadRunner myr.")
    best_super = max(v for k, v in by_label.items() if k not in pc)
    for k in pc:
        assert by_label[k] > best_super
    # At small P, Ethernet beats Myrinet on cost-effectiveness
    # ("ethernet-based networks are likely more cost-efficient" at <= 4).
    assert by_label["RoadRunner eth."] > by_label["RoadRunner myr."]


def test_parallel_crossover_at_scale():
    # At 32 processors the Ethernet saturation flips the ordering:
    # Myrinet becomes the cost-effective PC option.
    rows = parallel_cost_table(32)
    by_label = {r[0]: r[-1] for r in rows}
    assert "Muses" not in by_label  # only 4 nodes exist
    assert by_label["RoadRunner myr."] > by_label["RoadRunner eth."]


def test_prices_documented_for_all_systems():
    rows = serial_cost_table() + parallel_cost_table(4)
    assert all(r[-1] > 0 for r in rows)
    assert PRICES_1999["Muses"] * 4 <= 10_000  # the paper's budget


def test_mode_energies_parseval():
    """NekTarF.mode_energies sums to the physical kinetic energy."""
    import numpy as np

    from repro.assembly.space import FunctionSpace
    from repro.machines.network import NetworkModel
    from repro.mesh.generators import rectangle_quads
    from repro.ns.nektar_f import NekTarF
    from repro.parallel.simmpi import VirtualCluster

    mesh = rectangle_quads(2, 2, 0.0, 2 * np.pi, 0.0, 2 * np.pi)

    def amp_u(m, x, y, t):
        if m == 0:
            return complex(np.cos(y))
        if m == 1:
            return complex(0.3, -0.2)
        return 0.0

    zero = lambda m, x, y, t: 0.0  # noqa: E731

    def rank_fn(comm):
        space = FunctionSpace(mesh, 4)
        nf = NekTarF(comm, space, nz=4, nu=0.1, dt=1e-2, velocity_bcs={})
        nf.set_initial(amp_u, zero, zero)
        return nf.mode_energies(), nf.kinetic_energy()

    net = NetworkModel("t", latency_us=5, bandwidth=1e9)
    res = VirtualCluster(2, net).run(rank_fn)
    spec, total = res[0]
    assert spec.sum() == pytest.approx(total, rel=1e-8)
    # Mode 1 energy: Lz * |a|^2 * area * 2(two-sided) * 1/2 ... check > 0
    assert spec[1] > 0
    assert spec[0] > 0
