"""Acceptance tests for the trace_report CLI and the trace artifact.

The ISSUE's acceptance criteria: a smoke NekTar-F run on the virtual
cluster produces valid Chrome trace-event JSON with >= 2 rank tracks
showing stage spans, comm spans, and idle-wait spans; and trace_report
reproduces the per-stage cpu/wall/idle percentages from the same run.
"""

import json

import pytest

from repro.apps import trace_report
from repro.obs import load_chrome_trace, stage_breakdown, write_chrome_trace


@pytest.fixture(scope="module")
def traced_run():
    trace, cluster, registry = trace_report.run_traced(steps=2)
    return trace, cluster, registry


@pytest.fixture(scope="module")
def trace_path(traced_run, tmp_path_factory):
    trace, cluster, _registry = traced_run
    path = tmp_path_factory.mktemp("trace") / "TRACE_nektar_f.json"
    return write_chrome_trace(trace, path, rank_traces=cluster.rank_traces())


def test_trace_json_is_valid_chrome_trace(trace_path):
    doc = json.loads(trace_path.read_text())
    assert "traceEvents" in doc
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("M", "X", "i")
        if ev["ph"] != "M":
            assert isinstance(ev["ts"], (int, float))
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
    # Thread metadata carries the comm-verifier event strings.
    thread_meta = [
        e for e in doc["traceEvents"] if e["name"] == "thread_name"
    ]
    assert len(thread_meta) >= 2
    assert any("recent_comm_events" in e["args"] for e in thread_meta)


def test_two_rank_tracks_with_all_span_kinds(trace_path):
    events = load_chrome_trace(trace_path)
    ranks = {e.rank for e in events}
    assert len(ranks) >= 2
    cats_by_rank = {r: set() for r in ranks}
    for e in events:
        cats_by_rank[e.rank].add(e.cat)
    for r in ranks:
        assert "stage" in cats_by_rank[r], f"rank {r} lacks stage spans"
        assert "comm" in cats_by_rank[r], f"rank {r} lacks comm spans"
    assert any("idle" in cats for cats in cats_by_rank.values())


def test_report_reproduces_solver_percentages(traced_run, trace_path):
    """The percentages recovered from the JSON match the solver's own
    virtual StageTimer to floating-point accuracy."""
    trace, _cluster, _registry = traced_run
    events = load_chrome_trace(trace_path)
    for rank in sorted(trace.tracers):
        from_file = stage_breakdown(events, rank=rank)
        in_memory = stage_breakdown(trace.events(), rank=rank)
        for kind in ("cpu", "wall"):
            a = from_file.percentages(kind)
            b = in_memory.percentages(kind)
            assert a.keys() == b.keys()
            for stage in a:
                assert a[stage] == pytest.approx(b[stage], abs=1e-9)
        # Idle attribution is consistent: wall >= cpu per stage.
        for row in from_file.breakdown().values():
            assert row["wall"] + 1e-12 >= row["cpu"]


def test_render_report_sections(traced_run, trace_path):
    _trace, _cluster, registry = traced_run
    events = load_chrome_trace(trace_path)
    report = trace_report.render_report(
        events, machine="RoadRunner", registry=registry
    )
    assert "rank tracks" in report
    assert "idle = wall - cpu" in report
    assert "Roofline" in report
    assert "2:nonlinear" in report
    assert "comm.message_bytes" in report
    assert "hit rate" in report


def test_main_report_only_mode(trace_path, capsys, tmp_path):
    out = tmp_path / "report.txt"
    trace_report.main(
        ["--trace", str(trace_path), "--report-out", str(out)]
    )
    captured = capsys.readouterr().out
    assert "Roofline" in captured
    assert out.read_text().strip() in captured
