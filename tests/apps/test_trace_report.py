"""Acceptance tests for the trace_report CLI and the trace artifact.

The ISSUE's acceptance criteria: a smoke NekTar-F run on the virtual
cluster produces valid Chrome trace-event JSON with >= 2 rank tracks
showing stage spans, comm spans, and idle-wait spans; and trace_report
reproduces the per-stage cpu/wall/idle percentages from the same run.
"""

import json

import pytest

from repro.apps import trace_report
from repro.obs import load_chrome_trace, stage_breakdown, write_chrome_trace


@pytest.fixture(scope="module")
def traced_run():
    trace, cluster, registry = trace_report.run_traced(steps=2)
    return trace, cluster, registry


@pytest.fixture(scope="module")
def trace_path(traced_run, tmp_path_factory):
    trace, cluster, _registry = traced_run
    path = tmp_path_factory.mktemp("trace") / "TRACE_nektar_f.json"
    return write_chrome_trace(trace, path, rank_traces=cluster.rank_traces())


def test_trace_json_is_valid_chrome_trace(trace_path):
    doc = json.loads(trace_path.read_text())
    assert "traceEvents" in doc
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("M", "X", "i")
        if ev["ph"] != "M":
            assert isinstance(ev["ts"], (int, float))
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
    # Thread metadata carries the comm-verifier event strings.
    thread_meta = [
        e for e in doc["traceEvents"] if e["name"] == "thread_name"
    ]
    assert len(thread_meta) >= 2
    assert any("recent_comm_events" in e["args"] for e in thread_meta)


def test_two_rank_tracks_with_all_span_kinds(trace_path):
    events = load_chrome_trace(trace_path)
    ranks = {e.rank for e in events}
    assert len(ranks) >= 2
    cats_by_rank = {r: set() for r in ranks}
    for e in events:
        cats_by_rank[e.rank].add(e.cat)
    for r in ranks:
        assert "stage" in cats_by_rank[r], f"rank {r} lacks stage spans"
        assert "comm" in cats_by_rank[r], f"rank {r} lacks comm spans"
    assert any("idle" in cats for cats in cats_by_rank.values())


def test_report_reproduces_solver_percentages(traced_run, trace_path):
    """The percentages recovered from the JSON match the solver's own
    virtual StageTimer to floating-point accuracy."""
    trace, _cluster, _registry = traced_run
    events = load_chrome_trace(trace_path)
    for rank in sorted(trace.tracers):
        from_file = stage_breakdown(events, rank=rank)
        in_memory = stage_breakdown(trace.events(), rank=rank)
        for kind in ("cpu", "wall"):
            a = from_file.percentages(kind)
            b = in_memory.percentages(kind)
            assert a.keys() == b.keys()
            for stage in a:
                assert a[stage] == pytest.approx(b[stage], abs=1e-9)
        # Idle attribution is consistent: wall >= cpu per stage.
        for row in from_file.breakdown().values():
            assert row["wall"] + 1e-12 >= row["cpu"]


def test_render_report_sections(traced_run, trace_path):
    _trace, _cluster, registry = traced_run
    events = load_chrome_trace(trace_path)
    report = trace_report.render_report(
        events, machine="RoadRunner", registry=registry
    )
    assert "rank tracks" in report
    assert "idle = wall - cpu" in report
    assert "Roofline" in report
    assert "2:nonlinear" in report
    assert "comm.message_bytes" in report
    assert "hit rate" in report


def test_main_report_only_mode(trace_path, capsys, tmp_path):
    out = tmp_path / "report.txt"
    trace_report.main(
        ["--trace", str(trace_path), "--report-out", str(out)]
    )
    captured = capsys.readouterr().out
    assert "Roofline" in captured
    assert out.read_text().strip() in captured


# -- --critical-path mode -------------------------------------------------------


def test_run_critpath_pattern_smoke():
    analysis = trace_report.run_critpath_pattern("alltoall", nprocs=16)
    assert analysis["coverage"] >= 0.95
    mk = analysis["makespan"]
    cf = analysis["counterfactuals"]
    # The paper's question answered without a re-run: the OS-bypass
    # fabric and the zero-latency limit must both beat the recording.
    assert cf["swap:myrinet"] < mk
    assert cf["zero_latency"] < mk


def test_run_critpath_pattern_rejects_unknown():
    with pytest.raises(ValueError, match="unknown pattern"):
        trace_report.run_critpath_pattern("ring")


def test_main_pattern_mode(capsys, tmp_path):
    cp_out = tmp_path / "critpath.json"
    report = trace_report.main(
        [
            "--pattern",
            "alltoall",
            "--procs",
            "8",
            "--critpath-out",
            str(cp_out),
        ]
    )
    captured = capsys.readouterr().out
    assert "Synthetic alltoall sweep, 8 ranks" in captured
    assert "Critical path" in report
    analysis = json.loads(cp_out.read_text())
    assert analysis["coverage"] >= 0.95
    assert "swap:myrinet" in analysis["counterfactuals"]


def test_main_critical_path_nektar_f(capsys, tmp_path):
    """NekTar-F run with the recorder: the report gains the makespan
    attribution block, and the counterfactual answers Ethernet-vs-
    Myrinet from the one recorded run."""
    cp_out = tmp_path / "critpath.json"
    report = trace_report.main(
        [
            "--procs",
            "2",
            "--steps",
            "1",
            "--critical-path",
            "--out",
            str(tmp_path / "trace.json"),
            "--critpath-out",
            str(cp_out),
        ]
    )
    capsys.readouterr()
    assert "Critical path" in report
    assert "Roofline" in report  # the base report survives intact
    analysis = json.loads(cp_out.read_text())
    assert analysis["coverage"] >= 0.95
    # The default run is on Ethernet; the machine's other fabric is the
    # swap target.
    assert "swap:myrinet" in analysis["counterfactuals"]
    assert (
        analysis["counterfactuals"]["swap:myrinet"] <= analysis["makespan"]
    )
    # Stage attribution reaches the solver's stage names.
    assert any(s.startswith("2:") for s in analysis["by_stage"])
