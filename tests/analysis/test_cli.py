"""CLI coverage for ``python -m repro.analysis``.

Exercises the argument paths directly through ``main()``: file args,
``--format json|sarif``, ``--select``, the findings baseline, and
every exit code (0 clean, 1 findings/stale entries, 2 usage errors —
including waivers and ``--select`` tokens naming unknown rules).
"""

import json

import pytest

from repro.analysis.__main__ import main

VIOLATION = "import numpy as np\n\n\ndef kernel(a, x):\n    return np.dot(a, x)\n"
CLEAN = "def add(a, b):\n    return a + b\n"


@pytest.fixture
def bad_file(tmp_path):
    pkg = tmp_path / "src" / "repro" / "spectral"
    pkg.mkdir(parents=True)
    f = pkg / "injected.py"
    f.write_text(VIOLATION)
    return f


@pytest.fixture
def clean_file(tmp_path):
    pkg = tmp_path / "src" / "repro" / "spectral"
    pkg.mkdir(parents=True)
    f = pkg / "fine.py"
    f.write_text(CLEAN)
    return f


def test_clean_file_exits_zero(clean_file, capsys):
    assert main([str(clean_file)]) == 0
    assert capsys.readouterr().out == ""


def test_violation_exits_one_with_text_diag(bad_file, capsys):
    assert main([str(bad_file)]) == 1
    captured = capsys.readouterr()
    assert "injected.py:5:" in captured.out
    assert "REPRO001" in captured.out
    assert "problem(s) found" in captured.err


def test_missing_path_exits_two(capsys):
    assert main(["/no/such/path.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_format_json(bad_file, capsys):
    assert main([str(bad_file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    d = payload[0]
    assert d["code"] == "REPRO001"
    assert d["rule"] == "accounting"
    assert d["line"] == 5
    assert d["path"].endswith("injected.py")


def test_format_sarif(bad_file, capsys):
    assert main([str(bad_file), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    # The SARIF rule table carries the whole catalog, REPRO000 included.
    assert {"REPRO000", "REPRO001", "REPRO006", "REPRO010", "REPRO013"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "REPRO001"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 5


def test_format_sarif_clean_run_has_empty_results(clean_file, capsys):
    assert main([str(clean_file), "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_list_rules_includes_new_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REPRO000", "REPRO004", "REPRO005", "REPRO006",
                 "REPRO010", "REPRO011", "REPRO012", "REPRO013"):
        assert code in out


def test_select_restricts_and_forces_scope(tmp_path, capsys):
    f = tmp_path / "fake_test.py"
    f.write_text(
        "import numpy as np\n\n\ndef noise(n):\n    return np.random.randn(n)\n"
    )
    # Outside the repro tree nothing fires by default...
    assert main([str(f)]) == 0
    # ...but the seed audit forces REPRO004 everywhere.
    assert main([str(f), "--select", "REPRO004"]) == 1
    assert "REPRO004" in capsys.readouterr().out
    # And --select filters out other rules' findings.
    assert main([str(f), "--select", "wall-clock"]) == 0


def test_select_unknown_rule_exits_two(clean_file, capsys):
    assert main([str(clean_file), "--select", "REPRO999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_unknown_waiver_rule_exits_nonzero(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "ns"
    pkg.mkdir(parents=True)
    f = pkg / "waived.py"
    f.write_text("x = 1  # repro: waive[no-such-rule] because\n")
    assert main([str(f)]) == 1
    assert "REPRO000" in capsys.readouterr().out


def test_stale_waiver_exits_nonzero(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "ns"
    pkg.mkdir(parents=True)
    f = pkg / "waived.py"
    f.write_text("x = 1  # repro: waive[raw-numpy] nothing here to waive\n")
    assert main([str(f)]) == 1
    out = capsys.readouterr().out
    assert "stale waiver" in out
    assert "REPRO000" in out


def test_baseline_suppresses_known_findings(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(bad_file), "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    # With the finding recorded, the same tree is "clean".
    assert main([str(bad_file), "--baseline", str(baseline)]) == 0
    assert capsys.readouterr().out == ""


def test_baseline_reports_stale_entries(clean_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps({"findings": ["gone.py::REPRO001::accounting::old finding"]})
    )
    assert main([str(clean_file), "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().err


def test_baseline_does_not_hide_new_findings(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"findings": []}))
    assert main([str(bad_file), "--baseline", str(baseline)]) == 1
    assert "REPRO001" in capsys.readouterr().out


def test_missing_baseline_exits_two(clean_file, tmp_path, capsys):
    assert main([str(clean_file), "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "no such baseline" in capsys.readouterr().err


def test_malformed_baseline_exits_two(clean_file, tmp_path, capsys):
    baseline = tmp_path / "bad.json"
    baseline.write_text("[]")
    assert main([str(clean_file), "--baseline", str(baseline)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_write_baseline_requires_baseline_path(clean_file, capsys):
    assert main([str(clean_file), "--write-baseline"]) == 2
    assert "--write-baseline requires" in capsys.readouterr().err
