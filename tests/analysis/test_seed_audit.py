"""Seed audit: the determinism rules hold over tests/ and benchmarks/.

Every random draw in the test and benchmark trees must come from an
explicitly seeded generator — an unseeded draw anywhere in the harness
can leak into a golden trajectory or a BENCH baseline and make a
regression irreproducible.  The audit runs the REPRO004 rule in forced
scope (``--select`` semantics) over both trees, which is exactly what
``python -m repro.analysis --select REPRO004 tests benchmarks`` does in
CI.  An injection fixture proves the audit bites.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths

REPO = Path(repro.__file__).resolve().parents[2]


def _audit(paths, select=("unseeded-rng",)):
    return lint_paths(paths, select=list(select))


def test_tests_tree_has_no_unseeded_draws():
    diags = _audit([REPO / "tests"])
    assert diags == [], "\n" + "\n".join(d.format() for d in diags)


def test_benchmarks_tree_has_no_unseeded_draws():
    diags = _audit([REPO / "benchmarks"])
    assert diags == [], "\n" + "\n".join(d.format() for d in diags)


def test_examples_tree_has_no_unseeded_draws():
    diags = _audit([REPO / "examples"])
    assert diags == [], "\n" + "\n".join(d.format() for d in diags)


def test_audit_catches_injected_unseeded_draw(tmp_path):
    f = tmp_path / "test_evil.py"
    f.write_text(
        "import numpy as np\n\n\ndef test_noise():\n"
        "    assert np.random.rand(3).shape == (3,)\n"
    )
    diags = _audit([tmp_path])
    assert [d.code for d in diags] == ["REPRO004"]
    assert diags[0].line == 5


def test_audit_catches_bare_default_rng(tmp_path):
    f = tmp_path / "test_evil.py"
    f.write_text(
        "import numpy as np\n\nRNG = np.random.default_rng()\n"
    )
    diags = _audit([tmp_path])
    assert [d.code for d in diags] == ["REPRO004"]
