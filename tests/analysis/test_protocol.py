"""Tests for the communication-protocol checker (REPRO010-REPRO013).

Covers the acceptance criterion: a deliberately planted mismatched tag
pair is caught statically, plus the rank-conditional-collective,
unguarded-recv and uncounted-payload rules each with a violating, a
passing and a waived fixture.
"""

import textwrap

from repro.analysis import lint_files, lint_source


def _lint(src, path="src/repro/parallel/fake.py", select=None):
    return lint_source(textwrap.dedent(src), path, select=select)


def _codes(diags):
    return [d.code for d in diags]


# --------------------------------------------------------- REPRO010 pairing


MISMATCHED_TAGS = """
    def exchange(comm, x):
        comm.send(1 - comm.rank, x, tag=7)
        return comm.recv(1 - comm.rank, tag=8)
"""


def test_planted_tag_mismatch_detected():
    diags = _lint(MISMATCHED_TAGS)
    codes = _codes(diags)
    assert codes.count("REPRO010") == 2  # the orphaned send AND recv
    send_d = next(d for d in diags if "send with tag=7" in d.message)
    recv_d = next(d for d in diags if "recv with tag=8" in d.message)
    assert send_d.rule == recv_d.rule == "tag-pairing"


def test_matched_tags_pass():
    src = MISMATCHED_TAGS.replace("tag=8", "tag=7")
    assert _lint(src) == []


def test_default_tags_pair():
    src = """
        def exchange(comm, x):
            comm.send(1 - comm.rank, x)
            return comm.recv(1 - comm.rank)
    """
    assert _lint(src) == []


def test_sendrecv_contributes_both_directions():
    src = """
        def exchange(comm, x):
            return comm.sendrecv(1 - comm.rank, x, 1 - comm.rank, tag=5)
    """
    assert _lint(src) == []


def test_nonconstant_tag_skipped():
    # The checker only reports what it can prove.
    src = """
        def exchange(comm, x, tag):
            comm.send(1 - comm.rank, x, tag=tag)
            return comm.recv(1 - comm.rank, tag=tag)
    """
    assert _lint(src) == []


def test_pairing_is_corpus_wide(tmp_path):
    # The send lives in one file, the recv in another: pairing must span
    # the corpus, and an orphan in either file is still caught.
    pkg = tmp_path / "src" / "repro" / "parallel"
    pkg.mkdir(parents=True)
    (pkg / "producer.py").write_text(
        "def push(comm, x):\n    comm.send(1, x, tag=31)\n"
    )
    (pkg / "consumer.py").write_text(
        "def pull(comm):\n    return comm.recv(0, tag=31)\n"
    )
    assert lint_files([pkg / "producer.py", pkg / "consumer.py"]) == []
    (pkg / "consumer.py").write_text(
        "def pull(comm):\n    return comm.recv(0, tag=32)\n"
    )
    diags = lint_files([pkg / "producer.py", pkg / "consumer.py"])
    assert _codes(diags) == ["REPRO010", "REPRO010"]


def test_tag_mismatch_waivable():
    src = """
        def exchange(comm, x):
            comm.send(1 - comm.rank, x, tag=7)  # repro: waive[tag-pairing] peer uses dynamic tags
            return comm.recv(1 - comm.rank, tag=8)  # repro: waive[REPRO010] peer uses dynamic tags
    """
    assert _lint(src) == []


def test_comm_attribute_chain_recognized():
    src = """
        class Exchanger:
            def __init__(self, comm):
                self.comm = comm

            def run(self, x):
                self.comm.send(1, x, tag=9)
                return None
    """
    diags = _lint(src)
    assert _codes(diags) == ["REPRO010"]


# ------------------------------------------ REPRO011 conditional collectives


def test_rank_conditional_collective_flagged():
    src = """
        def reduce_root(comm, x):
            if comm.rank == 0:
                comm.barrier()
            return x
    """
    diags = _lint(src)
    assert _codes(diags) == ["REPRO011"]
    assert "barrier" in diags[0].message
    assert "deadlock" in diags[0].message


def test_unconditional_collective_passes():
    src = """
        def reduce_all(comm, x):
            comm.barrier()
            return comm.allreduce(x)
    """
    assert _lint(src) == []


def test_rank_independent_conditional_passes():
    src = """
        def maybe_sync(comm, every, step):
            if step % every == 0:
                comm.barrier()
            return step
    """
    assert _lint(src) == []


def test_rank_conditional_while_flagged():
    src = """
        def drain(comm):
            while comm.rank < comm.size - 1:
                comm.allreduce(1.0)
                break
    """
    diags = _lint(src)
    assert _codes(diags) == ["REPRO011"]


def test_nested_def_resets_conditional_context():
    # The closure is defined (not called) under the conditional.
    src = """
        def build(comm):
            if comm.rank == 0:
                def sync():
                    comm.barrier()
                return sync
            return None
    """
    assert _lint(src) == []


def test_rank_conditional_collective_waived():
    src = """
        def reduce_root(comm, x):
            if comm.rank == 0:
                comm.barrier()  # repro: waive[rank-conditional-collective] all ranks take this branch: guarded by caller
            return x
    """
    assert _lint(src) == []


# --------------------------------------------------- REPRO012 unguarded recv


FAULTY_RECV = """
    from repro.parallel.faults import FaultPlan

    def pull(comm, plan: FaultPlan):
        return comm.recv(0, tag=3)

    def push(comm, x):
        comm.send(1, x, tag=3)
"""


def test_unguarded_recv_in_fault_bearing_module_flagged():
    diags = _lint(FAULTY_RECV)
    assert _codes(diags) == ["REPRO012"]
    assert "timeout" in diags[0].message


def test_recv_with_timeout_passes():
    src = FAULTY_RECV.replace(
        "comm.recv(0, tag=3)", "comm.recv(0, tag=3, timeout=1.0, retries=2)"
    )
    assert _lint(src) == []


def test_recv_in_guarding_try_passes():
    src = """
        from repro.parallel.faults import FaultPlan, RecvTimeout

        def pull(comm, plan: FaultPlan):
            try:
                return comm.recv(0, tag=3)
            except RecvTimeout:
                return None

        def push(comm, x):
            comm.send(1, x, tag=3)
    """
    assert _lint(src) == []


def test_recv_without_fault_machinery_not_flagged():
    # No fault plan in sight: a plain blocking recv is the normal idiom.
    src = """
        def pull(comm):
            return comm.recv(0, tag=3)

        def push(comm, x):
            comm.send(1, x, tag=3)
    """
    assert _lint(src) == []


def test_fault_plan_keyword_marks_module_fault_bearing():
    src = """
        def run(comm, make_cluster):
            cl = make_cluster(faults=None)
            return comm.recv(0, tag=3)

        def push(comm, x):
            comm.send(1, x, tag=3)
    """
    diags = _lint(src)
    assert _codes(diags) == ["REPRO012"]


# ------------------------------------------------- REPRO013 uncounted payload


def test_inline_compute_payload_flagged():
    src = """
        import numpy as np

        def push(comm, a, b):
            comm.send(1, a @ b, tag=4)

        def pull(comm):
            return comm.recv(0, tag=4)
    """
    diags = _lint(src, path="src/repro/apps/fake.py")
    codes = _codes(diags)
    # The inline matmul in a rank function also (correctly) trips the
    # raw-numpy rule; the payload rule is the one under test here.
    assert "REPRO013" in codes
    d = next(d for d in diags if d.code == "REPRO013")
    assert "payload" in d.message


def test_precomputed_payload_passes():
    src = """
        import numpy as np

        def push(comm, a, b, charged_matmul):
            y = charged_matmul(a, b)
            comm.send(1, y, tag=4)

        def pull(comm):
            return comm.recv(0, tag=4)
    """
    assert _lint(src, path="src/repro/apps/fake.py") == []


def test_inline_compute_payload_waived():
    src = """
        import numpy as np

        def push(comm, a, b):
            comm.send(1, a @ b, tag=4)  # repro: waive[uncounted-payload] charged by caller  # repro: waive[raw-numpy] charged by caller

        def pull(comm):
            return comm.recv(0, tag=4)
    """
    diags = _lint(src, path="src/repro/apps/fake.py")
    assert "REPRO013" not in _codes(diags)


# ----------------------------------------------------------- scope and select


def test_protocol_rules_scoped_to_repro_tree():
    diags = lint_source(
        textwrap.dedent(MISMATCHED_TAGS), "tests/fake_test.py"
    )
    assert diags == []


def test_protocol_rules_forced_by_select():
    diags = lint_source(
        textwrap.dedent(MISMATCHED_TAGS),
        "tests/fake_test.py",
        select=["tag-pairing"],
    )
    assert _codes(diags) == ["REPRO010", "REPRO010"]
