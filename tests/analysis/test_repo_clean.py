"""Tier-1 registration of the invariant linter.

The whole ``src/`` tree must lint clean — this is the pytest-collected
form of ``python -m repro.analysis src/``, so any future uncharged
kernel, wall-clock call in rank code, or raw hot-path matmul fails the
ordinary test run with its file/line diagnostic in the assertion
message.  Injection tests then prove the check actually bites.
"""

import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis import lint_paths

SRC = Path(repro.__file__).resolve().parents[1]  # .../src


def test_source_tree_lints_clean():
    diags = lint_paths([SRC / "repro"])
    assert diags == [], "\n" + "\n".join(d.format() for d in diags)


def test_cli_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC / "repro")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_reports_and_fails_on_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "spectral"
    bad.mkdir(parents=True)
    f = bad / "injected.py"
    f.write_text(
        "import numpy as np\n\n\ndef kernel(a, x):\n    return np.dot(a, x)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(f)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "injected.py:5:" in proc.stdout
    assert "REPRO001" in proc.stdout


def test_cli_list_rules():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for code in ("REPRO001", "REPRO002", "REPRO003"):
        assert code in proc.stdout


def test_injected_uncharged_kernel_fails_lint(tmp_path):
    """Acceptance: an uncharged kernel in an accounting package is caught
    with a file/line diagnostic."""
    tree = tmp_path / "repro" / "assembly"
    tree.mkdir(parents=True)
    f = tree / "evil.py"
    f.write_text(
        "import numpy as np\n\n\ndef assemble(phi, w):\n    return phi @ (w * phi.T)\n"
    )
    diags = lint_paths([tmp_path])
    assert [d.code for d in diags] == ["REPRO001"]
    assert diags[0].line == 5
    assert diags[0].path.endswith("evil.py")


def test_injected_wall_clock_in_rank_fn_fails_lint(tmp_path):
    """Acceptance: time.time() inside a rank function is caught."""
    tree = tmp_path / "repro" / "apps"
    tree.mkdir(parents=True)
    f = tree / "evil.py"
    f.write_text(
        "import time\n\n\ndef rank_main(comm):\n    return time.time()\n"
    )
    diags = lint_paths([tmp_path])
    assert [d.code for d in diags] == ["REPRO002"]
    assert diags[0].line == 5
