"""Unit tests for the repro.analysis invariant linter.

Each rule gets a violating fixture, a passing fixture, and a waived
fixture, per the acceptance criteria.  Paths are synthetic — the linter
scopes rules by the ``repro/<package>/`` component of the path string,
so no files need to exist on disk.
"""

import textwrap

from repro.analysis import RULES, lint_source


def _lint(src, path):
    return lint_source(textwrap.dedent(src), path)


def _codes(diags):
    return [d.code for d in diags]


# ---------------------------------------------------------------- accounting


VIOLATING_KERNEL = """
    import numpy as np

    def apply_mass(phi, w, u):
        return phi @ (w * u)
"""

CHARGED_KERNEL = """
    import numpy as np
    from ..linalg.counters import charge

    def apply_mass(phi, w, u):
        charge(2.0 * phi.size, 8.0 * phi.size, "mass")
        return phi @ (w * u)
"""

BLAS_KERNEL = """
    import numpy as np
    from ..linalg import blas

    def apply_mass(phi, w, u):
        out = np.empty(phi.shape[0])
        return blas.dgemv(1.0, phi, w * u, 0.0, out)
"""

WAIVED_KERNEL = """
    import numpy as np

    # repro: waive[accounting] one-time setup, not a hot path
    def tabulate(a, b):
        return np.einsum("ij,jk->ik", a, b)
"""


def test_accounting_violation_flagged_with_location():
    diags = _lint(VIOLATING_KERNEL, "src/repro/spectral/fake.py")
    assert _codes(diags) == ["REPRO001"]
    d = diags[0]
    assert d.rule == "accounting"
    assert d.line == 5  # the `phi @ (...)` line
    assert "apply_mass" in d.message
    assert d.format().startswith("src/repro/spectral/fake.py:5:")


def test_accounting_charge_call_passes():
    assert _lint(CHARGED_KERNEL, "src/repro/spectral/fake.py") == []


def test_accounting_blas_kernel_counts_as_charging():
    assert _lint(BLAS_KERNEL, "src/repro/spectral/fake.py") == []


def test_accounting_waived():
    assert _lint(WAIVED_KERNEL, "src/repro/spectral/fake.py") == []


def test_accounting_scope_is_hot_packages_only():
    # The same uncharged kernel in util/ or io/ is not flagged.
    assert _lint(VIOLATING_KERNEL, "src/repro/util/fake.py") == []
    assert _lint(VIOLATING_KERNEL, "src/repro/io/fake.py") == []


def test_accounting_matches_np_linalg_and_scipy():
    src = """
        import numpy as np
        import scipy.linalg as sla

        def solve_dense(a, b):
            return np.linalg.solve(a, b)

        def solve_chol(a, b):
            return sla.cho_solve(a, b)
    """
    diags = _lint(src, "src/repro/linalg/fake.py")
    assert _codes(diags) == ["REPRO001", "REPRO001"]


def test_accounting_ignores_exception_classes():
    # np.linalg.LinAlgError in an except clause is not compute.
    src = """
        import numpy as np

        def guard(a):
            try:
                return a.sum()
            except np.linalg.LinAlgError:
                return 0.0
    """
    assert _lint(src, "src/repro/linalg/fake.py") == []


# -------------------------------------------------------------- virtual-time


CLOCK_IN_RANK_FN = """
    import time

    def worker(comm, n):
        t0 = time.time()
        return t0
"""

CLOCK_IN_SOLVER = """
    import time

    def step(state):
        return time.perf_counter()
"""

VIRTUAL_CLOCK_OK = """
    def worker(comm, n):
        comm.compute(1.0e-3)
        return comm.wall
"""

CLOCK_WAIVED = """
    import time

    def step(state):
        return time.perf_counter()  # repro: waive[virtual-time] host-side harness timing
"""


def test_virtual_time_rank_function_flagged_anywhere():
    # Rank functions (first arg `comm`) are in scope even outside ns/parallel.
    diags = _lint(CLOCK_IN_RANK_FN, "src/repro/apps/fake.py")
    assert _codes(diags) == ["REPRO002"]
    assert diags[0].line == 5
    assert "time.time" in diags[0].message


def test_virtual_time_solver_package_in_scope():
    diags = _lint(CLOCK_IN_SOLVER, "src/repro/ns/fake.py")
    assert _codes(diags) == ["REPRO002"]


def test_virtual_time_clean_rank_fn_passes():
    assert _lint(VIRTUAL_CLOCK_OK, "src/repro/apps/fake.py") == []


def test_virtual_time_waived():
    assert _lint(CLOCK_WAIVED, "src/repro/ns/fake.py") == []


def test_virtual_time_threading_primitive_flagged():
    src = """
        import threading

        def step(state):
            lock = threading.Lock()
            return lock
    """
    diags = _lint(src, "src/repro/parallel/fake.py")
    assert _codes(diags) == ["REPRO002"]
    assert "threading.Lock" in diags[0].message


def test_virtual_time_file_waiver():
    src = """
        # repro: waive-file[virtual-time] this module is the substrate
        import threading

        def step(state):
            return threading.Lock()
    """
    assert _lint(src, "src/repro/parallel/fake.py") == []


def test_virtual_time_out_of_scope_module_ok():
    # benchkernels host-measurement code may use real clocks.
    assert _lint(CLOCK_IN_SOLVER, "src/repro/benchkernels/fake.py") == []


def test_virtual_time_datetime_and_module_level():
    src = """
        from datetime import datetime

        STAMP = datetime.now()
    """
    diags = _lint(src, "src/repro/ns/fake.py")
    assert _codes(diags) == ["REPRO002"]


# ----------------------------------------------------------------- raw-numpy


RAW_MATMUL_HOT = """
    import numpy as np

    def apply(a, x):
        return a @ x
"""

BLAS_HOT = """
    import numpy as np
    from ..linalg import blas

    def apply(a, x):
        y = np.empty(a.shape[0])
        return blas.dgemv(1.0, a, x, 0.0, y)
"""

RAW_MATMUL_WAIVED = """
    import numpy as np

    def apply(a, x):
        return a @ x  # repro: waive[raw-numpy] complex-valued, charged explicitly
"""


def test_raw_numpy_flagged_in_hot_package():
    diags = _lint(RAW_MATMUL_HOT, "src/repro/ns/fake.py")
    assert _codes(diags) == ["REPRO003"]
    assert diags[0].rule == "raw-numpy"


def test_raw_numpy_blas_passes():
    assert _lint(BLAS_HOT, "src/repro/ns/fake.py") == []


def test_raw_numpy_waived():
    assert _lint(RAW_MATMUL_WAIVED, "src/repro/ns/fake.py") == []


def test_raw_numpy_rank_context_in_scope_anywhere():
    diags = _lint(RAW_MATMUL_HOT.replace("def apply(a, x)", "def apply(comm, x)"),
                  "src/repro/apps/fake.py")
    assert _codes(diags) == ["REPRO003"]


def test_raw_numpy_not_flagged_in_linalg_substrate():
    # linalg/ is the counted substrate itself: accounting applies (and the
    # charge() call satisfies it), raw-numpy does not.
    src = """
        import numpy as np
        from .counters import charge

        def dgemv_like(a, x):
            charge(2.0 * a.size, 8.0 * a.size, "k")
            return a @ x
    """
    assert _lint(src, "src/repro/linalg/fake.py") == []


# ------------------------------------------------------------------- waivers


def test_waiver_unknown_rule_is_flagged():
    src = """
        import numpy as np

        def f(a, x):
            return a @ x  # repro: waive[no-such-rule] whatever
    """
    diags = _lint(src, "src/repro/ns/fake.py")
    codes = _codes(diags)
    assert "REPRO000" in codes  # the bad waiver itself
    assert "REPRO003" in codes  # and it does not silence the finding


def test_waiver_missing_reason_is_flagged():
    src = """
        import numpy as np

        def f(a, x):
            return a @ x  # repro: waive[raw-numpy]
    """
    diags = _lint(src, "src/repro/ns/fake.py")
    assert "REPRO000" in _codes(diags)


def test_rule_registry():
    assert set(RULES) == {
        "accounting",
        "virtual-time",
        "raw-numpy",
        "unseeded-rng",
        "wall-clock",
        "unordered-iteration",
        "tag-pairing",
        "rank-conditional-collective",
        "unguarded-recv",
        "uncounted-payload",
    }
    codes = [code for code, _ in RULES.values()]
    assert len(set(codes)) == len(RULES)
    assert all(code.startswith("REPRO") for code in codes)


def test_syntax_error_reported_not_raised():
    diags = lint_source("def broken(:\n", "src/repro/ns/fake.py")
    assert len(diags) == 1
    assert diags[0].code == "REPRO000"


def test_nested_function_analyzed_separately():
    # The outer function charges; the nested closure does not and is
    # flagged on its own.
    src = """
        import numpy as np
        from .counters import charge

        def outer(a, x):
            charge(1.0, 8.0, "outer")

            def inner(b):
                return np.dot(b, b)

            return inner(a @ x)
    """
    diags = _lint(src, "src/repro/linalg/fake.py")
    assert _codes(diags) == ["REPRO001"]
    assert "inner" in diags[0].message


BATCHED_KERNEL = """
    import numpy as np
    from ..linalg import blas

    def apply_mass_batched(phi, w, u):
        out = np.empty(u.shape[:-1] + (phi.shape[0],))
        return blas.dgemv_batched(1.0, phi, w * u, 0.0, out)

    def build_ops(a, b, c):
        blas.dgemm_batched(1.0, a, b, 0.0, c, transb=True)
        return blas.ddot_batched(a[..., 0, :], b[..., 0, :])
"""

BATCHED_IMPORTED_KERNEL = """
    import numpy as np
    from ..linalg.blas import dgemm_batched

    def build_ops(a, b, c):
        return dgemm_batched(1.0, a, b, 0.0, c)
"""


def test_batched_kernels_count_as_charging_substrate():
    """The stacked kernels charge exactly like the per-element calls
    they replace, so they satisfy the accounting rule."""
    assert _lint(BATCHED_KERNEL, "src/repro/spectral/fake.py") == []
    assert _lint(BATCHED_IMPORTED_KERNEL, "src/repro/assembly/fake.py") == []


def test_batched_kernels_pass_raw_numpy_rule():
    assert _lint(BATCHED_KERNEL, "src/repro/ns/fake.py") == []


# ------------------------------------------------- determinism: unseeded-rng


def test_unseeded_rng_global_numpy_draw_flagged():
    src = """
        import numpy as np

        def noise(n):
            return np.random.randn(n)
    """
    diags = _lint(src, "src/repro/util/fake.py")
    assert _codes(diags) == ["REPRO004"]
    assert "np" not in diags[0].message or "numpy.random" in diags[0].message


def test_unseeded_rng_bare_default_rng_flagged():
    src = """
        import numpy as np

        def gen():
            return np.random.default_rng()
    """
    diags = _lint(src, "src/repro/ns/fake.py")
    assert _codes(diags) == ["REPRO004"]
    assert "without a seed" in diags[0].message


def test_unseeded_rng_seeded_default_rng_passes():
    src = """
        import numpy as np

        def gen():
            return np.random.default_rng(1999)
    """
    assert _lint(src, "src/repro/ns/fake.py") == []


def test_unseeded_rng_stdlib_random_flagged():
    src = """
        import random

        def pick(xs):
            return random.choice(xs)
    """
    diags = _lint(src, "src/repro/io/fake.py")
    assert _codes(diags) == ["REPRO004"]


def test_unseeded_rng_bound_generator_draw_passes():
    # Draws on a local Generator object are fine: the seed is explicit
    # at construction.
    src = """
        import numpy as np

        def noise(n):
            rng = np.random.default_rng(42)
            return rng.normal(size=n)
    """
    assert _lint(src, "src/repro/ns/fake.py") == []


def test_unseeded_rng_out_of_repro_tree_not_flagged_by_default():
    src = """
        import numpy as np

        def noise(n):
            return np.random.randn(n)
    """
    assert lint_source(textwrap.dedent(src), "tests/fake_test.py") == []


def test_select_forces_rule_scope():
    # The seed audit runs --select REPRO004 over tests/: the rule is
    # forced in scope outside the repro tree.
    src = """
        import numpy as np

        def noise(n):
            return np.random.randn(n)
    """
    diags = lint_source(
        textwrap.dedent(src), "tests/fake_test.py", select=["REPRO004"]
    )
    assert _codes(diags) == ["REPRO004"]


def test_select_unknown_rule_raises():
    import pytest

    with pytest.raises(ValueError, match="unknown rule"):
        lint_source("x = 1\n", "src/repro/ns/fake.py", select=["REPRO999"])


# --------------------------------------------------- determinism: wall-clock


def test_wall_clock_flagged_in_numeric_core():
    src = """
        import time

        def assemble(a):
            t0 = time.perf_counter()
            return a, t0
    """
    diags = _lint(src, "src/repro/assembly/fake.py")
    assert _codes(diags) == ["REPRO005"]
    assert diags[0].rule == "wall-clock"


def test_wall_clock_defers_to_virtual_time_in_parallel():
    # In ns/parallel the stricter REPRO002 owns clock reads.
    src = """
        import time

        def step(state):
            return time.perf_counter()
    """
    diags = _lint(src, "src/repro/parallel/fake.py")
    assert _codes(diags) == ["REPRO002"]


def test_wall_clock_not_flagged_in_util():
    # util/ hosts the sanctioned StageTimer.
    src = """
        import time

        def stamp():
            return time.perf_counter()
    """
    assert _lint(src, "src/repro/util/fake.py") == []


def test_wall_clock_waived():
    src = """
        import time

        def assemble(a):
            t0 = time.perf_counter()  # repro: waive[wall-clock] host-side progress meter
            return a, t0
    """
    assert _lint(src, "src/repro/assembly/fake.py") == []


# ------------------------------------------ determinism: unordered-iteration


RANK_KEYED_LOOP = """
    def exchange(comm, values):
        inbox = {}
        for peer in range(comm.size):
            if peer != comm.rank:
                inbox[peer] = comm.recv(peer, tag=3)
        total = 0.0
        for peer, val in inbox.items():
            total += val
        return total
"""


def test_unordered_iteration_rank_keyed_dict_flagged():
    diags = _lint(RANK_KEYED_LOOP, "src/repro/parallel/fake.py")
    codes = _codes(diags)
    assert "REPRO006" in codes
    d = next(d for d in diags if d.code == "REPRO006")
    assert "inbox" in d.message


def test_unordered_iteration_sorted_wrapper_passes():
    src = RANK_KEYED_LOOP.replace("inbox.items()", "sorted(inbox.items())")
    diags = _lint(src, "src/repro/parallel/fake.py")
    assert "REPRO006" not in _codes(diags)


def test_unordered_iteration_set_flagged():
    src = """
        def merge(comm, ids):
            out = []
            for i in {3, 1, 2}:
                out.append(i)
            return out
    """
    diags = _lint(src, "src/repro/fourier/fake.py")
    assert _codes(diags) == ["REPRO006"]
    assert "set" in diags[0].message


def test_unordered_iteration_sum_over_set_exempt():
    # Order-insensitive reductions over sets are fine.
    src = """
        def total(comm, ids):
            return sum(i for i in {3, 1, 2})
    """
    assert _lint(src, "src/repro/fourier/fake.py") == []


def test_unordered_iteration_plain_dict_not_flagged():
    # Dicts not keyed by rank iterate in insertion order — deterministic.
    src = """
        def tally(comm, words):
            counts = {}
            for w in words:
                counts[w] = counts.get(w, 0) + 1
            return [counts[w] for w in counts]
    """
    assert _lint(src, "src/repro/parallel/fake.py") == []


def test_unordered_iteration_out_of_scope_package():
    src = """
        def pick(ids):
            return [i for i in {3, 1, 2}]
    """
    assert _lint(src, "src/repro/util/fake.py") == []


def test_unordered_iteration_waived():
    src = RANK_KEYED_LOOP.replace(
        "for peer, val in inbox.items():",
        "for peer, val in inbox.items():  # repro: waive[unordered-iteration] summation is commutative here",
    )
    diags = _lint(src, "src/repro/parallel/fake.py")
    assert "REPRO006" not in _codes(diags)


# --------------------------------------- waiver matching (multi-line, decorated)


def test_waiver_on_any_line_of_multiline_statement():
    # The violating call spans lines 5-8; the waiver sits on the closing
    # line, far from the first line the diagnostic anchors to.
    src = """
        import numpy as np

        def tabulate(a, b):
            return np.einsum(
                "ij,jk->ik",
                a,
                b,
            )  # repro: waive[accounting] one-time setup table
    """
    assert _lint(src, "src/repro/spectral/fake.py") == []


def test_waiver_above_decorated_def():
    src = """
        import functools
        import numpy as np

        # repro: waive[accounting] cached one-time table
        @functools.lru_cache(maxsize=None)
        def tabulate(a, b):
            return np.einsum("ij,jk->ik", a, b)
    """
    assert _lint(src, "src/repro/spectral/fake.py") == []


def test_waiver_between_decorator_and_def():
    src = """
        import functools
        import numpy as np

        @functools.lru_cache(maxsize=None)
        # repro: waive[accounting] cached one-time table
        def tabulate(a, b):
            return np.einsum("ij,jk->ik", a, b)
    """
    assert _lint(src, "src/repro/spectral/fake.py") == []


def test_waiver_accepts_rule_code_token():
    src = """
        import numpy as np

        def f(a, x):
            return a @ x  # repro: waive[REPRO003] complex-valued, charged explicitly
    """
    diags = _lint(src, "src/repro/ns/fake.py")
    assert "REPRO003" not in _codes(diags)


def test_stale_waiver_reported():
    src = """
        def f(a, x):
            return a + x  # repro: waive[raw-numpy] there is nothing to waive
    """
    diags = _lint(src, "src/repro/ns/fake.py")
    assert _codes(diags) == ["REPRO000"]
    assert "stale" in diags[0].message


def test_stale_waiver_not_reported_under_select():
    # A partial run can't judge staleness.
    src = """
        def f(a, x):
            return a + x  # repro: waive[raw-numpy] there is nothing to waive
    """
    diags = lint_source(
        textwrap.dedent(src), "src/repro/ns/fake.py", select=["unseeded-rng"]
    )
    assert diags == []
