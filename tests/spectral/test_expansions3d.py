import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.expansions3d import (
    HexExpansion,
    PrismExpansion,
    TetExpansion,
    dubiner_tri,
    tet_mode_count,
)


def test_mode_counts():
    assert HexExpansion(3).nmodes == 64
    assert TetExpansion(4).nmodes == 35  # the paper's ALE element size
    assert tet_mode_count(4) == 35
    assert PrismExpansion(2).nmodes == 6 * 3
    for P in (1, 2, 3, 5):
        assert TetExpansion(P).nmodes == (P + 1) * (P + 2) * (P + 3) // 6


def test_invalid_order():
    with pytest.raises(ValueError):
        HexExpansion(0)


def test_reference_volumes():
    assert HexExpansion(2).volume() == pytest.approx(8.0)
    assert TetExpansion(2).volume() == pytest.approx(4.0 / 3.0)
    assert PrismExpansion(2).volume() == pytest.approx(4.0)


def test_hex_mass_spd():
    m = HexExpansion(3).mass_matrix()
    np.testing.assert_allclose(m, m.T, atol=1e-12)
    assert np.linalg.eigvalsh(m).min() > 0


@pytest.mark.parametrize("cls", [TetExpansion, PrismExpansion])
def test_orthogonal_bases_have_diagonal_mass(cls):
    exp = cls(4)
    m = exp.mass_matrix()
    off = m - np.diag(np.diag(m))
    assert np.abs(off).max() < 1e-10 * np.abs(np.diag(m)).max()
    assert np.all(np.diag(m) > 0)


def test_dubiner_tri_orthogonality():
    from repro.spectral.jacobi import gauss_jacobi

    xa, wa = gauss_jacobi(8)
    xb, wb = gauss_jacobi(8, 1.0, 0.0)
    A = np.tile(xa, 8)
    B = np.repeat(xb, 8)
    W = 0.5 * np.outer(wb, wa).ravel()
    modes = [(p, q) for p in range(4) for q in range(4 - p)]
    for i, (p1, q1) in enumerate(modes):
        for p2, q2 in modes[i + 1 :]:
            inner = np.sum(
                W * dubiner_tri(p1, q1, A, B) * dubiner_tri(p2, q2, A, B)
            )
            assert abs(inner) < 1e-12


@given(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2))
@settings(max_examples=27, deadline=None)
def test_tet_projection_reproduces_polynomials(i, j, k):
    P = 6
    if i + j + k > P:
        return
    exp = TetExpansion(P)
    x1, x2, x3 = exp.reference_coords()
    f = x1**i * x2**j * x3**k
    coeffs = exp.forward(f)
    np.testing.assert_allclose(exp.backward(coeffs), f, atol=1e-10)


def test_tet_projection_spectral_convergence():
    errs = []
    for P in (2, 4, 6, 8):
        exp = TetExpansion(P, nq=P + 3)
        x1, x2, x3 = exp.reference_coords()
        f = np.exp(0.5 * (x1 + x2 + x3))
        err = exp.backward(exp.forward(f)) - f
        errs.append(np.sqrt(exp.integrate(err**2)))
    assert errs[1] < errs[0] / 10
    assert errs[2] < errs[1] / 10
    assert errs[3] < 1e-9


def test_hex_projection_exact_for_tensor_polynomials():
    exp = HexExpansion(3)
    x1, x2, x3 = exp.points
    f = (1 + x1) * (2 - x2) * x3**2 + x1 * x2 * x3
    coeffs = exp.forward(f)
    np.testing.assert_allclose(exp.backward(coeffs), f, atol=1e-10)


def test_prism_projection_convergence():
    errs = []
    for P in (2, 4, 6):
        exp = PrismExpansion(P, nq=P + 3)
        A, X2, C = exp.points
        # map collapsed (A, C) of the triangle back to reference.
        xi1 = 0.5 * (1 + A) * (1 - C) - 1
        f = np.sin(xi1) * np.cos(X2) * np.exp(0.3 * C)
        err = exp.backward(exp.forward(f)) - f
        errs.append(np.sqrt(exp.integrate(err**2)))
    assert errs[1] < errs[0] / 8
    assert errs[2] < errs[1] / 8


def test_tet_quadrature_avoids_singular_faces():
    exp = TetExpansion(3)
    _, B, C = exp.points
    assert np.all(B < 1) and np.all(C < 1)


def test_hex_pqr_bijection():
    exp = HexExpansion(2)
    assert len(set(exp.pqr)) == exp.nmodes
