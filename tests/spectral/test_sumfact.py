import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.counters import OpCounter
from repro.spectral.expansions import QuadExpansion


@given(st.integers(2, 9), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_backward_sumfact_matches_tabulated(order, seed):
    exp = QuadExpansion(order)
    c = np.random.default_rng(seed).standard_normal(exp.nmodes)
    np.testing.assert_allclose(
        exp.backward_sumfact(c), exp.phi.T @ c, rtol=1e-12, atol=1e-12
    )


@given(st.integers(2, 8), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_gradient_sumfact_matches_tabulated(order, seed):
    exp = QuadExpansion(order)
    c = np.random.default_rng(seed).standard_normal(exp.nmodes)
    d1, d2 = exp.gradient_sumfact(c)
    np.testing.assert_allclose(d1, exp.dphi1.T @ c, rtol=1e-11, atol=1e-11)
    np.testing.assert_allclose(d2, exp.dphi2.T @ c, rtol=1e-11, atol=1e-11)


def test_tensor_layout_roundtrip():
    exp = QuadExpansion(5)
    tl = exp.tensor_layout()
    c = np.arange(exp.nmodes, dtype=float)
    np.testing.assert_array_equal(tl.from_tensor(tl.to_tensor(c)), c)
    # The (p, q) map is a bijection onto the tensor grid.
    seen = {tuple(pq) for pq in tl.pq}
    assert len(seen) == exp.nmodes == (exp.order + 1) ** 2


def test_sumfact_cheaper_in_flops():
    order = 8
    exp = QuadExpansion(order)
    c = np.ones(exp.nmodes)
    with OpCounter() as slow:
        _ = exp.phi.T @ c  # uncounted numpy; count the dgemv equivalent
        from repro.linalg import blas

        out = np.zeros(exp.rule.nq)
        blas.dgemv(1.0, exp.phi, c, 0.0, out, trans=True)
    with OpCounter() as fast:
        exp.backward_sumfact(c)
    assert fast.flops < 0.55 * slow.flops


def test_space_sumfact_matches_plain():
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads

    mesh = rectangle_quads(2, 2, 0.0, 1.0, 0.5, 2.0)
    plain = FunctionSpace(mesh, 6)
    fast = FunctionSpace(mesh, 6, sumfact=True)
    rng = np.random.default_rng(7)
    u_hat = rng.standard_normal(plain.ndof)
    np.testing.assert_allclose(
        fast.backward(u_hat), plain.backward(u_hat), rtol=1e-12, atol=1e-12
    )
    fx, fy = fast.gradient(u_hat)
    px, py = plain.gradient(u_hat)
    np.testing.assert_allclose(fx, px, rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(fy, py, rtol=1e-10, atol=1e-10)


def test_ns_solver_identical_with_sumfact():
    from repro.assembly.space import FunctionSpace
    from repro.mesh.generators import rectangle_quads
    from repro.ns.exact import TaylorVortex
    from repro.ns.nektar2d import NavierStokes2D

    tv = TaylorVortex(nu=0.05)
    mesh = rectangle_quads(2, 2, 0.0, np.pi, 0.0, np.pi)
    results = {}
    for sumfact in (False, True):
        space = FunctionSpace(mesh, 5, sumfact=sumfact)
        bcs = {
            t: (
                lambda x, y, tt: float(tv.u(x, y, tt)),
                lambda x, y, tt: float(tv.v(x, y, tt)),
            )
            for t in ("left", "right", "top", "bottom")
        }
        ns = NavierStokes2D(space, 0.05, 5e-3, bcs)
        ns.set_initial(
            lambda x, y, t: tv.u(x, y, 0.0), lambda x, y, t: tv.v(x, y, 0.0)
        )
        ns.run(3)
        results[sumfact] = ns.u_hat
    np.testing.assert_allclose(results[True], results[False], atol=1e-10)


def test_tri_has_no_sumfact():
    from repro.spectral.expansions import TriExpansion

    assert not hasattr(TriExpansion(3), "backward_sumfact")
