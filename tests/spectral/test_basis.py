import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.basis import (
    bubble,
    bubble_deriv,
    edge_reversal_sign,
    h0,
    h1,
    modified_a,
    modified_a_deriv,
)

xpts = np.linspace(-1.0, 1.0, 21)


def test_hats_partition_of_unity():
    np.testing.assert_allclose(h0(xpts) + h1(xpts), 1.0)


def test_hats_nodal_values():
    assert h0(np.array([-1.0]))[0] == 1.0
    assert h0(np.array([1.0]))[0] == 0.0
    assert h1(np.array([1.0]))[0] == 1.0


@given(st.integers(0, 8))
@settings(max_examples=20, deadline=None)
def test_bubble_vanishes_at_endpoints(k):
    ends = np.array([-1.0, 1.0])
    np.testing.assert_allclose(bubble(k, ends), 0.0, atol=1e-14)


@given(st.integers(0, 8))
@settings(max_examples=20, deadline=None)
def test_bubble_deriv_matches_fd(k):
    h = 1e-6
    fd = (bubble(k, xpts + h) - bubble(k, xpts - h)) / (2 * h)
    np.testing.assert_allclose(bubble_deriv(k, xpts), fd, rtol=1e-5, atol=1e-6)


def test_bubble_parity():
    # bubble(k, -x) = (-1)^k bubble(k, x)
    x = np.linspace(0.1, 0.9, 5)
    for k in range(5):
        np.testing.assert_allclose(
            bubble(k, -x), (-1) ** k * bubble(k, x), rtol=1e-12
        )


def test_edge_reversal_sign_matches_parity():
    for k in range(6):
        assert edge_reversal_sign(k) == (-1) ** k


def test_edge_reversal_sign_invalid():
    with pytest.raises(ValueError):
        edge_reversal_sign(-1)


def test_modified_a_structure():
    P = 5
    np.testing.assert_allclose(modified_a(0, P, xpts), h0(xpts))
    np.testing.assert_allclose(modified_a(P, P, xpts), h1(xpts))
    for p in range(1, P):
        np.testing.assert_allclose(modified_a(p, P, xpts), bubble(p - 1, xpts))


def test_modified_a_deriv_matches_fd():
    P, h = 4, 1e-6
    for p in range(P + 1):
        fd = (modified_a(p, P, xpts + h) - modified_a(p, P, xpts - h)) / (2 * h)
        np.testing.assert_allclose(
            modified_a_deriv(p, P, xpts), fd, rtol=1e-5, atol=1e-6
        )


def test_modified_a_linear_independence():
    P = 6
    x, _ = np.polynomial.legendre.leggauss(P + 1)
    v = np.array([modified_a(p, P, x) for p in range(P + 1)])
    assert np.linalg.matrix_rank(v) == P + 1


def test_modified_a_spans_polynomials():
    # Any degree-P polynomial is an exact combination of the P+1 modes.
    P = 5
    x = np.linspace(-1, 1, P + 1)
    v = np.array([modified_a(p, P, x) for p in range(P + 1)])
    target = 3.0 * x**5 - x**2 + 0.5
    coeff = np.linalg.solve(v.T, target)
    xf = np.linspace(-1, 1, 50)
    vf = np.array([modified_a(p, P, xf) for p in range(P + 1)])
    np.testing.assert_allclose(vf.T @ coeff, 3.0 * xf**5 - xf**2 + 0.5, atol=1e-9)


def test_invalid_mode_requests():
    with pytest.raises(ValueError):
        modified_a(3, 2, xpts)
    with pytest.raises(ValueError):
        modified_a(-1, 4, xpts)
    with pytest.raises(ValueError):
        modified_a(0, 0, xpts)
    with pytest.raises(ValueError):
        bubble(-1, xpts)
    with pytest.raises(ValueError):
        bubble_deriv(-1, xpts)
