# test package
