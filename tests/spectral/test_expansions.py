import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.expansions import QuadExpansion, TriExpansion

orders = st.integers(2, 7)


# ---- mode bookkeeping (Figure 9) -------------------------------------------


def test_figure9_mode_counts_order4():
    assert TriExpansion(4).nmodes == 15
    assert QuadExpansion(4).nmodes == 25


@given(orders)
@settings(max_examples=12, deadline=None)
def test_tri_mode_count_formula(P):
    assert TriExpansion(P).nmodes == (P + 1) * (P + 2) // 2


@given(orders)
@settings(max_examples=12, deadline=None)
def test_quad_mode_count_formula(P):
    assert QuadExpansion(P).nmodes == (P + 1) ** 2


def test_figure9_ordering_vertices_edges_interior():
    for exp in (TriExpansion(4), QuadExpansion(4)):
        kinds = [m.kind for m in exp.modes]
        nv, ne = exp.nverts, exp.nedges * 3  # order 4: 3 modes per edge
        assert kinds[:nv] == ["vertex"] * nv
        assert kinds[nv : nv + ne] == ["edge"] * ne
        assert all(k == "interior" for k in kinds[nv + ne :])


def test_interior_q_runs_fastest():
    exp = QuadExpansion(4)
    labels = [exp.modes[i].label for i in exp.interior_modes]
    assert labels[:3] == ["i1_1", "i1_2", "i1_3"]
    tri = TriExpansion(5)
    tl = [tri.modes[i].label for i in tri.interior_modes]
    assert tl == ["i1_1", "i1_2", "i1_3", "i2_1", "i2_2", "i3_1"]


def test_edge_modes_listing():
    exp = TriExpansion(4)
    for e in range(3):
        ids = exp.edge_modes(e)
        assert len(ids) == 3
        assert [exp.modes[i].k for i in ids] == [0, 1, 2]
    with pytest.raises(ValueError):
        exp.edge_modes(3)


def test_order_one_rejected():
    with pytest.raises(ValueError):
        TriExpansion(1)


# ---- vertex modes are the linear (barycentric) functions --------------------


def test_quad_vertex_modes_bilinear():
    exp = QuadExpansion(3)
    verts = np.array([[-1, -1], [1, -1], [1, 1], [-1, 1]], dtype=float)
    tab = exp.eval_basis(verts[:, 0], verts[:, 1])
    for v, mid in enumerate(exp.vertex_modes):
        expect = np.zeros(4)
        expect[v] = 1.0
        np.testing.assert_allclose(tab[mid], expect, atol=1e-13)


def test_tri_vertex_modes_barycentric():
    exp = TriExpansion(3)
    verts = np.array([[-1, -1], [1, -1], [-1, 1]], dtype=float)
    tab = exp.eval_basis(verts[:, 0], verts[:, 1])
    for v, mid in enumerate(exp.vertex_modes):
        expect = np.zeros(3)
        expect[v] = 1.0
        np.testing.assert_allclose(tab[mid], expect, atol=1e-13)


@given(st.sampled_from([2, 3, 4, 5]))
@settings(max_examples=8, deadline=None)
def test_vertex_partition_of_unity(P):
    for exp in (TriExpansion(P), QuadExpansion(P)):
        tot = sum(exp.phi[i] for i in exp.vertex_modes)
        np.testing.assert_allclose(tot, 1.0, atol=1e-12)


# ---- interior modes vanish on the boundary ----------------------------------


def _boundary_points(exp, n=9):
    s = np.linspace(-1, 1, n)
    if isinstance(exp, TriExpansion):
        pts = [(s, -np.ones(n)), (-s, s), (-np.ones(n), s)]
    else:
        pts = [
            (s, -np.ones(n)),
            (np.ones(n), s),
            (s, np.ones(n)),
            (-np.ones(n), s),
        ]
    return pts


@given(st.sampled_from([3, 4, 5]))
@settings(max_examples=6, deadline=None)
def test_interior_modes_vanish_on_boundary(P):
    for exp in (TriExpansion(P), QuadExpansion(P)):
        for xi1, xi2 in _boundary_points(exp):
            tab = exp.eval_basis(xi1, xi2)
            for i in exp.interior_modes:
                np.testing.assert_allclose(tab[i], 0.0, atol=1e-12)


def test_edge_modes_vanish_on_other_edges():
    for exp in (TriExpansion(4), QuadExpansion(4)):
        bpts = _boundary_points(exp)
        for e in range(exp.nedges):
            for other, (xi1, xi2) in enumerate(bpts):
                if other == e:
                    continue
                tab = exp.eval_basis(xi1[1:-1], xi2[1:-1])  # skip shared vertices
                for i in exp.edge_modes(e):
                    np.testing.assert_allclose(tab[i], 0.0, atol=1e-12)


# ---- edge traces are the shared 1-D bubbles (tri/quad conformity) ----------


def test_edge_traces_match_1d_bubbles():
    from repro.spectral.basis import bubble

    P = 4
    s = np.linspace(-1, 1, 11)
    tri, quad = TriExpansion(P), QuadExpansion(P)
    # tri edge0 (b=-1, param +a) vs quad edge0 (xi2=-1, param +xi1)
    t_tab = tri.eval_basis(s, -np.ones_like(s))
    q_tab = quad.eval_basis(s, -np.ones_like(s))
    for k in range(P - 1):
        tm = tri.edge_modes(0)[k]
        qm = quad.edge_modes(0)[k]
        np.testing.assert_allclose(t_tab[tm], bubble(k, s), atol=1e-12)
        np.testing.assert_allclose(q_tab[qm], bubble(k, s), atol=1e-12)
    # tri hypotenuse (edge1, param +b): xi1 = -s, xi2 = s
    h_tab = tri.eval_basis(-s, s)
    for k in range(P - 1):
        tm = tri.edge_modes(1)[k]
        np.testing.assert_allclose(h_tab[tm], bubble(k, s), atol=1e-12)
    # tri edge2 (xi1=-1, param +b)
    l_tab = tri.eval_basis(-np.ones_like(s), s)
    for k in range(P - 1):
        tm = tri.edge_modes(2)[k]
        np.testing.assert_allclose(l_tab[tm], bubble(k, s), atol=1e-12)


# ---- mass matrix / projection ------------------------------------------------


@given(st.sampled_from([2, 3, 4, 5, 6]))
@settings(max_examples=10, deadline=None)
def test_mass_matrix_spd(P):
    for exp in (TriExpansion(P), QuadExpansion(P)):
        m = exp.mass_matrix()
        np.testing.assert_allclose(m, m.T, atol=1e-13)
        w = np.linalg.eigvalsh(m)
        assert w.min() > 0.0


def test_mass_matrix_basis_independent():
    # det(M) > 0 and cond finite => modes linearly independent.
    for exp in (TriExpansion(5), QuadExpansion(5)):
        assert np.linalg.matrix_rank(exp.mass_matrix()) == exp.nmodes


@given(st.integers(0, 3), st.integers(0, 3))
@settings(max_examples=16, deadline=None)
def test_projection_reproduces_polynomials(p, q):
    # Projecting a polynomial of total degree <= P must be exact.
    P = 5
    for exp in (TriExpansion(P), QuadExpansion(P)):
        if isinstance(exp, TriExpansion) and p + q > P:
            continue  # triangle spans total degree <= P only
        A, B = exp.rule.points
        if isinstance(exp, TriExpansion):
            xi1 = 0.5 * (1 + A) * (1 - B) - 1
            xi2 = B
        else:
            xi1, xi2 = A, B
        f = xi1**p * xi2**q
        coeffs = exp.forward(f)
        np.testing.assert_allclose(exp.backward(coeffs), f, atol=1e-10)


def test_projection_spectral_convergence():
    # Smooth non-polynomial target: error decays exponentially with P.
    def f(x, y):
        return np.sin(np.pi * x) * np.cos(np.pi * y / 2)

    errs = {}
    for P in (3, 5, 7, 9):
        exp = QuadExpansion(P, nq=P + 4)
        A, B = exp.rule.points
        coeffs = exp.forward(f(A, B))
        err = exp.backward(coeffs) - f(A, B)
        errs[P] = np.sqrt(exp.integrate(err**2))
    assert errs[5] < errs[3] / 5
    assert errs[7] < errs[5] / 5
    assert errs[9] < errs[7] / 5
    assert errs[9] < 1e-5


def test_tri_projection_spectral_convergence():
    def f(x, y):
        return np.exp(x + y)

    errs = {}
    for P in (2, 4, 6, 8):
        exp = TriExpansion(P, nq=P + 4)
        A, B = exp.rule.points
        xi1 = 0.5 * (1 + A) * (1 - B) - 1
        coeffs = exp.forward(f(xi1, B))
        err = exp.backward(coeffs) - f(xi1, B)
        errs[P] = np.sqrt(exp.integrate(err**2))
    assert errs[4] < errs[2] / 10
    assert errs[6] < errs[4] / 10
    assert errs[8] < 1e-8


# ---- stiffness (Figure 10 structure) ----------------------------------------


@given(st.sampled_from([3, 4, 5]))
@settings(max_examples=6, deadline=None)
def test_reference_stiffness_symmetric_psd_constants_null(P):
    for exp in (TriExpansion(P), QuadExpansion(P)):
        L = exp.reference_stiffness()
        np.testing.assert_allclose(L, L.T, atol=1e-11)
        w = np.linalg.eigvalsh(L)
        assert w.min() > -1e-10
        # constants: sum of vertex modes = 1 -> gradient 0.
        c = np.zeros(exp.nmodes)
        for i in exp.vertex_modes:
            c[i] = 1.0
        np.testing.assert_allclose(L @ c, 0.0, atol=1e-10)


def test_figure10_boundary_first_block_structure():
    # Boundary modes first, then interior: interior-interior block is the
    # trailing block; check banded-ish structure exists (interior block
    # bandwidth smaller than full dimension).
    exp = TriExpansion(4)
    L = exp.reference_stiffness()
    nb = len(exp.boundary_modes)
    assert exp.boundary_modes == list(range(nb))
    assert exp.interior_modes == list(range(nb, exp.nmodes))
    ii = L[nb:, nb:]
    assert ii.shape == (3, 3)


# ---- derivative tabulation ----------------------------------------------------


@given(st.sampled_from([2, 3, 4, 5]))
@settings(max_examples=8, deadline=None)
def test_tabulated_derivatives_match_fd(P):
    h = 1e-6
    for exp in (QuadExpansion(P), TriExpansion(P)):
        A, B = exp.rule.points
        if isinstance(exp, TriExpansion):
            xi1 = 0.5 * (1 + A) * (1 - B) - 1
            xi2 = B
        else:
            xi1, xi2 = A, B
        f1 = exp.eval_basis(xi1 + h, xi2)
        f0 = exp.eval_basis(xi1 - h, xi2)
        np.testing.assert_allclose(exp.dphi1, (f1 - f0) / (2 * h), rtol=2e-5, atol=2e-5)
        g1 = exp.eval_basis(xi1, xi2 + h)
        g0 = exp.eval_basis(xi1, xi2 - h)
        np.testing.assert_allclose(exp.dphi2, (g1 - g0) / (2 * h), rtol=2e-5, atol=2e-5)


def test_tri_collapse_handles_top_vertex():
    exp = TriExpansion(3)
    a, b = exp.collapse(np.array([-1.0]), np.array([1.0]))
    assert np.isfinite(a).all()
    tab = exp.eval_basis(np.array([-1.0]), np.array([1.0]))
    assert np.isfinite(tab).all()


def test_eval_at_matches_backward_on_quad_points():
    for exp in (TriExpansion(4), QuadExpansion(4)):
        rng = np.random.default_rng(5)
        c = rng.standard_normal(exp.nmodes)
        A, B = exp.rule.points
        if isinstance(exp, TriExpansion):
            xi1 = 0.5 * (1 + A) * (1 - B) - 1
            xi2 = B
        else:
            xi1, xi2 = A, B
        np.testing.assert_allclose(
            exp.eval_at(c, xi1, xi2), exp.backward(c), atol=1e-11
        )


def test_mode_labels_figure9():
    tri = TriExpansion(4)
    assert tri.mode_labels()[:3] == ["v0", "v1", "v2"]
    assert tri.mode_labels()[3] == "e0_0"
    assert tri.mode_labels()[-1] == "i2_1"
    quad = QuadExpansion(4)
    assert quad.mode_labels()[:4] == ["v0", "v1", "v2", "v3"]
    assert quad.mode_labels()[-1] == "i3_3"
