import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.jacobi import (
    gauss_jacobi,
    gauss_lobatto_jacobi,
    gauss_lobatto_legendre,
    jacobi,
    jacobi_derivative,
)

params = st.sampled_from([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (2.0, 1.0), (0.5, 0.5)])


def test_low_order_explicit_forms():
    x = np.linspace(-1, 1, 7)
    np.testing.assert_allclose(jacobi(0, 0.0, 0.0, x), np.ones_like(x))
    np.testing.assert_allclose(jacobi(1, 0.0, 0.0, x), x)  # Legendre P1
    np.testing.assert_allclose(jacobi(2, 0.0, 0.0, x), 0.5 * (3 * x**2 - 1))
    # P_1^{1,1}(x) = 2x
    np.testing.assert_allclose(jacobi(1, 1.0, 1.0, x), 2 * x)


def test_value_at_one_is_binomial():
    # P_n^{a,b}(1) = C(n+a, n)
    from math import comb

    for n in range(6):
        assert jacobi(n, 2.0, 1.0, np.array([1.0]))[0] == pytest.approx(
            comb(n + 2, n)
        )


@given(st.integers(0, 12), st.integers(0, 12), params)
@settings(max_examples=60, deadline=None)
def test_orthogonality_under_gauss_jacobi(m, n, ab):
    alpha, beta = ab
    nq = max(m, n) + 1
    x, w = gauss_jacobi(nq, alpha, beta)
    pm, pn = jacobi(m, alpha, beta, x), jacobi(n, alpha, beta, x)
    inner = float(np.sum(w * pm * pn))
    if m != n:
        assert inner == pytest.approx(0.0, abs=1e-9)
    else:
        assert inner > 0.0


@given(st.integers(1, 10), params)
@settings(max_examples=40, deadline=None)
def test_derivative_matches_finite_difference(n, ab):
    alpha, beta = ab
    x = np.linspace(-0.9, 0.9, 11)
    h = 1e-6
    fd = (jacobi(n, alpha, beta, x + h) - jacobi(n, alpha, beta, x - h)) / (2 * h)
    np.testing.assert_allclose(
        jacobi_derivative(n, alpha, beta, x), fd, rtol=1e-5, atol=1e-5
    )


def test_derivative_order_zero_and_overflow():
    x = np.linspace(-1, 1, 5)
    np.testing.assert_allclose(
        jacobi_derivative(3, 0.0, 0.0, x, k=0), jacobi(3, 0.0, 0.0, x)
    )
    np.testing.assert_array_equal(jacobi_derivative(2, 0.0, 0.0, x, k=3), 0.0)


def test_second_derivative():
    # P_3 Legendre = (5x^3 - 3x)/2, P_3'' = 15x
    x = np.linspace(-1, 1, 9)
    np.testing.assert_allclose(
        jacobi_derivative(3, 0.0, 0.0, x, k=2), 15 * x, rtol=1e-12
    )


def test_invalid_arguments():
    with pytest.raises(ValueError):
        jacobi(-1, 0.0, 0.0, np.array([0.0]))
    with pytest.raises(ValueError):
        jacobi(2, -1.0, 0.0, np.array([0.0]))
    with pytest.raises(ValueError):
        jacobi_derivative(2, 0.0, 0.0, np.array([0.0]), k=-1)
    with pytest.raises(ValueError):
        gauss_jacobi(0)
    with pytest.raises(ValueError):
        gauss_lobatto_jacobi(1)


@given(st.integers(1, 12))
@settings(max_examples=24, deadline=None)
def test_gauss_exactness(n):
    # Exact for degree 2n-1 monomials against unit weight.
    x, w = gauss_jacobi(n)
    for d in range(2 * n):
        exact = 2.0 / (d + 1) if d % 2 == 0 else 0.0
        assert float(np.sum(w * x**d)) == pytest.approx(exact, abs=1e-12)


@given(st.integers(2, 12))
@settings(max_examples=22, deadline=None)
def test_lobatto_exactness_and_endpoints(n):
    x, w = gauss_lobatto_legendre(n)
    assert x[0] == pytest.approx(-1.0)
    assert x[-1] == pytest.approx(1.0)
    assert np.all(np.diff(x) > 0)
    for d in range(2 * n - 2):
        exact = 2.0 / (d + 1) if d % 2 == 0 else 0.0
        assert float(np.sum(w * x**d)) == pytest.approx(exact, abs=1e-10)


def test_lobatto_jacobi_10_weighted_exactness():
    # Weight (1 - x): integral of x^d (1-x) over [-1,1].
    n = 6
    x, w = gauss_lobatto_jacobi(n, 1.0, 0.0)
    for d in range(2 * n - 3):
        even = 2.0 / (d + 1) if d % 2 == 0 else 0.0
        odd = 2.0 / (d + 2) if (d + 1) % 2 == 0 else 0.0
        assert float(np.sum(w * x**d)) == pytest.approx(even - odd, abs=1e-10)


def test_gll_weights_positive_and_symmetric():
    x, w = gauss_lobatto_legendre(8)
    assert np.all(w > 0)
    np.testing.assert_allclose(w, w[::-1], rtol=1e-12)
    np.testing.assert_allclose(x, -x[::-1], rtol=1e-12)
