import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.quadrature import quad_rule, tri_rule


def test_quad_rule_area():
    r = quad_rule(3)
    assert r.integrate(np.ones(r.nq)) == pytest.approx(4.0)


def test_tri_rule_area():
    r = tri_rule(3)
    assert r.integrate(np.ones(r.nq)) == pytest.approx(2.0)


def test_points_flattening_convention():
    r = quad_rule(3)
    A, B = r.points
    # a index fastest: first 3 entries share b.
    assert np.allclose(B[:3], B[0])
    assert not np.allclose(A[:3], A[0])
    assert A.size == B.size == r.nq == 9


@given(st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=36, deadline=None)
def test_quad_rule_monomial_exactness(p, q):
    r = quad_rule(6)
    A, B = r.points
    val = r.integrate(A**p * B**q)
    ia = 2.0 / (p + 1) if p % 2 == 0 else 0.0
    ib = 2.0 / (q + 1) if q % 2 == 0 else 0.0
    assert val == pytest.approx(ia * ib, abs=1e-12)


def tri_monomial_exact(p, q):
    """int over reference triangle of xi1^p xi2^q, by 1-D reduction."""
    # int_{-1}^{1} xi2^q [int_{-1}^{-xi2} xi1^p dxi1] dxi2
    #   = int xi2^q ((-xi2)^{p+1} - (-1)^{p+1})/(p+1) dxi2
    total = 0.0
    # expand ((-x)^{p+1}) term: int x^q (-x)^{p+1} dx
    e = p + 1 + q
    t1 = ((-1) ** (p + 1)) * (2.0 / (e + 1) if e % 2 == 0 else 0.0)
    t2 = -((-1) ** (p + 1)) * (2.0 / (q + 1) if q % 2 == 0 else 0.0)
    total = (t1 + t2) / (p + 1)
    return total


@given(st.integers(0, 4), st.integers(0, 4))
@settings(max_examples=30, deadline=None)
def test_tri_rule_monomial_exactness(p, q):
    r = tri_rule(8)
    A, B = r.points
    # Map collapsed (a, b) -> reference (xi1, xi2).
    xi1 = 0.5 * (1.0 + A) * (1.0 - B) - 1.0
    xi2 = B
    val = r.integrate(xi1**p * xi2**q)
    assert val == pytest.approx(tri_monomial_exact(p, q), abs=1e-12)


def test_tri_rule_points_avoid_collapsed_vertex():
    r = tri_rule(5)
    _, B = r.points
    assert np.all(B < 1.0)
    assert np.all(B > -1.0)


def test_weights_positive():
    for r in (quad_rule(4), tri_rule(4)):
        assert np.all(r.weights > 0)
