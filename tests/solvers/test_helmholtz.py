import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.solvers.helmholtz import HelmholtzCG, HelmholtzDirect, solve_poisson


def l2_error(space, u_hat, exact):
    xq, yq = space.coords()
    return space.norm_l2(space.backward(u_hat) - exact(xq, yq))


def test_poisson_polynomial_exact():
    # u = x^2 y + y^3, f = -lap u = -(2y + 6y) = -8y? lap u = 2y + 6y = 8y.
    mesh = rectangle_quads(2, 2, 0, 1, 0, 1)
    space = FunctionSpace(mesh, 4)
    u_exact = lambda x, y: x**2 * y + y**3  # noqa: E731
    f = lambda x, y: -8.0 * y  # noqa: E731  (-lap u; solver does -lap u = f)
    u_hat = solve_poisson(space, lambda x, y: 8.0 * y * -1.0, ("left", "right", "top", "bottom"), u_exact)
    # -lap u = f means f = -8y
    assert l2_error(space, u_hat, u_exact) < 1e-10
    _ = f


def test_poisson_spectral_convergence_quads():
    mesh = rectangle_quads(2, 2, 0, 1, 0, 1)
    u_exact = lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    f = lambda x, y: 2 * np.pi**2 * np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    errs = []
    for P in (2, 4, 6, 8):
        space = FunctionSpace(mesh, P)
        u_hat = solve_poisson(space, f, ("left", "right", "top", "bottom"))
        errs.append(l2_error(space, u_hat, u_exact))
    assert errs[1] < errs[0] / 10
    assert errs[2] < errs[1] / 10
    assert errs[3] < errs[2] / 5
    assert errs[3] < 1e-7


def test_poisson_spectral_convergence_tris():
    mesh = rectangle_tris(2, 2, 0, 1, 0, 1)
    u_exact = lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    f = lambda x, y: 2 * np.pi**2 * np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    errs = []
    for P in (3, 5, 7):
        space = FunctionSpace(mesh, P)
        u_hat = solve_poisson(space, f, ("left", "right", "top", "bottom"))
        errs.append(l2_error(space, u_hat, u_exact))
    assert errs[1] < errs[0] / 10
    assert errs[2] < errs[1] / 10


def test_poisson_h_convergence():
    u_exact = lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    f = lambda x, y: 2 * np.pi**2 * u_exact(x, y)  # noqa: E731
    errs = []
    for n in (1, 2, 4):
        space = FunctionSpace(rectangle_quads(n, n, 0, 1, 0, 1), 3)
        u_hat = solve_poisson(space, f, ("left", "right", "top", "bottom"))
        errs.append(l2_error(space, u_hat, u_exact))
    # Order-3 elements: O(h^4) L2 error -> each halving gains ~16x.
    assert errs[1] < errs[0] / 8
    assert errs[2] < errs[1] / 8


def test_helmholtz_neumann_manufactured():
    # u = cos(pi x) cos(pi y) has zero normal flux on the unit square.
    lam = 3.0
    u_exact = lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y)  # noqa: E731
    f = lambda x, y: (2 * np.pi**2 + lam) * u_exact(x, y)  # noqa: E731
    space = FunctionSpace(rectangle_quads(2, 2, 0, 1, 0, 1), 7)
    solver = HelmholtzDirect(space, lam)
    u_hat = solver.solve(f)
    assert l2_error(space, u_hat, u_exact) < 1e-6


def test_inhomogeneous_dirichlet_polynomial():
    # Laplace problem: u = x^2 - y^2 is harmonic; only BCs drive it.
    u_exact = lambda x, y: x**2 - y**2  # noqa: E731
    space = FunctionSpace(rectangle_quads(2, 2, 0, 1, 0, 1), 4)
    u_hat = solve_poisson(
        space, lambda x, y: 0.0, ("left", "right", "top", "bottom"), u_exact
    )
    assert l2_error(space, u_hat, u_exact) < 1e-10


def test_cg_matches_direct():
    f = lambda x, y: np.exp(x) * np.sin(y)  # noqa: E731
    space = FunctionSpace(rectangle_quads(2, 2, 0, 1, 0, 1), 4)
    tags = ("left", "right", "top", "bottom")
    u_d = HelmholtzDirect(space, 1.0, tags).solve(f)
    cg = HelmholtzCG(space, 1.0, tags, tol=1e-12)
    u_c = cg.solve(f)
    assert cg.last_iterations > 0
    np.testing.assert_allclose(u_c, u_d, atol=1e-8)


def test_mixed_dirichlet_neumann():
    # u = x(2 - x): du/dn = 0 at x = 1... use domain [0,1]:
    # u = x(2 - x): u' = 2 - 2x = 0 at x = 1 (natural Neumann at 'right'),
    # Dirichlet at left/top/bottom. -lap u = 2.
    u_exact = lambda x, y: x * (2.0 - x)  # noqa: E731
    space = FunctionSpace(rectangle_quads(2, 2, 0, 1, 0, 1), 4)
    u_hat = solve_poisson(
        space, lambda x, y: 2.0, ("left", "top", "bottom"), u_exact
    )
    assert l2_error(space, u_hat, u_exact) < 1e-10


def test_pure_neumann_poisson_rejected():
    space = FunctionSpace(rectangle_quads(1, 1), 3)
    with pytest.raises(ValueError):
        HelmholtzDirect(space, 0.0, ())


def test_unknown_backend_rejected():
    space = FunctionSpace(rectangle_quads(1, 1), 2)
    with pytest.raises(ValueError):
        solve_poisson(space, lambda x, y: 1.0, ("left",), backend="magic")


def test_cg_reports_nonconvergence():
    f = lambda x, y: 1.0  # noqa: E731
    space = FunctionSpace(rectangle_quads(3, 3), 4)
    cg = HelmholtzCG(space, 0.0, ("left",), tol=1e-14, maxiter=1)
    with pytest.raises(RuntimeError):
        cg.solve(f)


def test_solver_on_bluff_body_mesh():
    from repro.mesh.generators import bluff_body_mesh

    mesh = bluff_body_mesh(m=3, nr=1)
    space = FunctionSpace(mesh, 3)
    solver = HelmholtzDirect(space, 1.0, ("inflow", "wall"))
    u_hat = solver.solve(lambda x, y: 1.0)
    vals = space.backward(u_hat)
    assert np.isfinite(vals).all()
    # Maximum principle-ish sanity: solution bounded by f/lam away from BCs.
    assert vals.max() <= 1.0 + 1e-6
