"""Matrix-free operator apply / diagonal / CG vs the assembled oracle.

The sum-factorised apply must agree with the dense tabulated path to
solver precision across orders 4..12 on quad meshes, fall back cleanly
on mixed quad/tri meshes, and cost decisively fewer flops per apply.
"""

import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.linalg.counters import OpCounter
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.mesh.mesh2d import Mesh2D
from repro.solvers.helmholtz import HelmholtzCG


def mixed_mesh() -> Mesh2D:
    verts = np.array(
        [[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [2, 1]], dtype=np.float64
    )
    return Mesh2D(verts, [(0, 1, 2, 3), (1, 4, 2), (4, 5, 2)])


@pytest.mark.parametrize("order", [4, 6, 8, 10, 12])
@pytest.mark.parametrize("kind,lam", [("mass", 0.0), ("laplacian", 0.0), ("helmholtz", 2.5)])
def test_operator_apply_matches_assembled(order, kind, lam):
    space = FunctionSpace(rectangle_quads(2, 2, 0.0, 1.0, 0.5, 2.0), order)
    assert space.sumfact  # all-quad mesh defaults on
    a = space.assemble(space.elemental_matrices(kind, lam))
    rng = np.random.default_rng(order)
    u = rng.standard_normal(space.ndof)
    got = space.operator_apply(kind, u, lam)
    want = a @ u
    scale = float(np.max(np.abs(want))) or 1.0
    np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-10 * max(1.0, scale))
    # Diagonal (Jacobi preconditioner) agrees too.
    np.testing.assert_allclose(
        space.operator_diagonal(kind, lam),
        np.asarray(a.diagonal()),
        rtol=1e-10,
        atol=1e-10,
    )


def test_operator_apply_batches_leading_axes():
    space = FunctionSpace(rectangle_quads(2, 1), 5)
    rng = np.random.default_rng(3)
    u = rng.standard_normal((3, space.ndof))
    block = space.operator_apply("helmholtz", u, 1.0)
    for i in range(3):
        np.testing.assert_array_equal(
            block[i], space.operator_apply("helmholtz", u[i], 1.0)
        )


def test_operator_apply_mixed_mesh_fallback():
    """Explicit sumfact on a mixed mesh: quad batches go matrix-free,
    tri batches through cached tabulated stacks — same assembled answer."""
    space = FunctionSpace(mixed_mesh(), 6, sumfact=True)
    a = space.assemble(space.elemental_matrices("helmholtz", 1.0))
    rng = np.random.default_rng(11)
    u = rng.standard_normal(space.ndof)
    want = a @ u
    scale = float(np.max(np.abs(want))) or 1.0
    np.testing.assert_allclose(
        space.operator_apply("helmholtz", u, 1.0),
        want,
        rtol=0.0,
        atol=1e-10 * max(1.0, scale),
    )
    np.testing.assert_allclose(
        space.operator_diagonal("helmholtz", 1.0),
        np.asarray(a.diagonal()),
        rtol=1e-10,
        atol=1e-10,
    )


@pytest.mark.parametrize("order", [4, 6, 8, 10, 12])
def test_helmholtz_cg_matrix_free_matches_dense(order):
    """Both CG backends solve the same manufactured problem to the same
    answer; the matrix-free one never assembles a matrix."""
    lam = 3.0
    u_exact = lambda x, y: np.cos(np.pi * x) * np.cos(np.pi * y)  # noqa: E731
    f = lambda x, y: (2 * np.pi**2 + lam) * u_exact(x, y)  # noqa: E731
    space = FunctionSpace(rectangle_quads(2, 2, 0, 1, 0, 1), order)
    tags = ("left", "right")
    mf = HelmholtzCG(space, lam, tags, matrix_free=True)
    dense = HelmholtzCG(space, lam, tags, matrix_free=False)
    assert mf.a_uu is None and dense.a_uu is not None
    np.testing.assert_allclose(mf.diag, dense.diag, rtol=1e-10, atol=1e-12)
    u_mf = mf.solve(f, u_exact)
    u_d = dense.solve(f, u_exact)
    scale = float(np.max(np.abs(u_d))) or 1.0
    np.testing.assert_allclose(u_mf, u_d, rtol=0.0, atol=1e-7 * scale)


def test_helmholtz_cg_matrix_free_default_follows_sumfact():
    quad = FunctionSpace(rectangle_quads(2, 1), 4)
    assert HelmholtzCG(quad, 1.0).matrix_free
    tri = FunctionSpace(rectangle_tris(2, 1), 4)
    assert not HelmholtzCG(tri, 1.0).matrix_free


def test_helmholtz_cg_matrix_free_block_solve():
    """Multi-RHS path: the matrix-free block apply returns the same
    solutions as column-by-column dense solves."""
    lam = 1.5
    space = FunctionSpace(rectangle_quads(2, 2), 6)
    tags = ("left", "right", "top", "bottom")
    rng = np.random.default_rng(5)
    rhs = rng.standard_normal((3, space.ndof))
    mf = HelmholtzCG(space, lam, tags, matrix_free=True)
    dense = HelmholtzCG(space, lam, tags, matrix_free=False)
    nd = mf.dirichlet_dofs.size
    dv = rng.standard_normal((3, nd))
    u_mf = mf.solve_rhs(rhs, dv)
    u_d = np.stack([dense.solve_rhs(rhs[i], dv[i]) for i in range(3)])
    scale = float(np.max(np.abs(u_d))) or 1.0
    np.testing.assert_allclose(u_mf, u_d, rtol=0.0, atol=1e-7 * scale)


def test_helmholtz_cg_matrix_free_on_mixed_mesh():
    """Explicit matrix-free on a mixed mesh exercises the tri fallback
    inside operator_apply; solutions match the dense backend."""
    lam = 2.0  # lam > 0: the all-Neumann problem is non-singular
    space = FunctionSpace(mixed_mesh(), 5, sumfact=True)
    mf = HelmholtzCG(space, lam, matrix_free=True)
    dense = HelmholtzCG(space, lam, matrix_free=False)
    f = lambda x, y: np.sin(x) * np.cos(y)  # noqa: E731
    u_mf = mf.solve(f)
    u_d = dense.solve(f)
    scale = float(np.max(np.abs(u_d))) or 1.0
    np.testing.assert_allclose(u_mf, u_d, rtol=0.0, atol=1e-7 * scale)


def _apply_charges(order, sumfact):
    space = FunctionSpace(rectangle_quads(2, 2), order, sumfact=sumfact)
    u = np.ones(space.ndof)
    if not sumfact:
        space._dense_batch_mats(0, "helmholtz", 1.0)  # build outside the count
    with OpCounter() as c:
        space.operator_apply("helmholtz", u, 1.0)
    return c.flops, c.bytes


def test_matrix_free_apply_complexity_class():
    """Golden scaling pin: doubling the order multiplies the
    sum-factorised apply flops cubically (< 8x) but the dense tabulated
    apply quartically (> 10x); at order 12 the matrix-free apply also
    streams well under the dense matrices' bytes."""
    f6, _ = _apply_charges(6, True)
    f12, b12 = _apply_charges(12, True)
    g6, _ = _apply_charges(6, False)
    g12, c12 = _apply_charges(12, False)
    assert f12 / f6 < 8.0  # O(p^3): ~2^3 per order doubling
    assert g12 / g6 > 10.0  # O(p^4): ~2^4 per order doubling
    assert b12 < 0.6 * c12  # memory-bound win at paper-relevant order


def test_matrix_free_setup_charges():
    """Golden setup pin: the matrix-free CG backend skips elemental
    matrices and assembly entirely — construction charges under 5% of
    the dense backend's flops (diagonal contractions only)."""
    mesh = rectangle_quads(3, 3)
    with OpCounter() as mf:
        HelmholtzCG(FunctionSpace(mesh, 8), 1.0, ("left",), matrix_free=True)
    with OpCounter() as dense:
        HelmholtzCG(FunctionSpace(mesh, 8), 1.0, ("left",), matrix_free=False)
    assert mf.flops < 0.05 * dense.flops
    assert mf.bytes < 0.25 * dense.bytes
