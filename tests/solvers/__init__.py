# test package
