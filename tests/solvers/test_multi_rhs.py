"""Property tests: multi-RHS solves == column-by-column reference.

The multi-RHS engine (batched condensation, blocked banded sweeps,
block-Jacobi-PCG) must be a pure wall-clock optimisation: on randomised
mixed tri/quad meshes across orders 2..8, a row-stacked solve must match
solving the columns one by one to 1e-12 and charge byte-for-byte
identical OpCounter flop/byte totals (in total and per label; call
counts legitimately differ).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.condensation import CondensedOperator
from repro.assembly.global_system import AssembledOperator
from repro.assembly.space import FunctionSpace
from repro.linalg.counters import OpCounter
from repro.mesh.generators import rectangle_quads, rectangle_tris
from repro.mesh.mesh2d import Mesh2D
from repro.solvers.helmholtz import HelmholtzCG


def mixed_mesh() -> Mesh2D:
    """One quad + two tris sharing edges (and so edge-sign flips)."""
    verts = np.array(
        [[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [2, 1]], dtype=np.float64
    )
    return Mesh2D(verts, [(0, 1, 2, 3), (1, 4, 2), (4, 5, 2)])


def make_mesh(kind: int) -> Mesh2D:
    if kind == 0:
        return rectangle_quads(2, 2)
    if kind == 1:
        return rectangle_tris(2, 2)
    return mixed_mesh()


def assert_same_charges(cm: OpCounter, cc: OpCounter) -> None:
    """Stacked and per-column totals must be byte-for-byte identical."""
    assert cm.flops == cc.flops
    assert cm.bytes == cc.bytes
    assert set(cm.by_label) == set(cc.by_label)
    for label, (fc, bc, _) in cc.by_label.items():
        fm, bm, _ = cm.by_label[label]
        assert fm == fc, (label, fm, fc)
        assert bm == bc, (label, bm, bc)


def assert_matches_columns(op, rhs, dv):
    """op.solve on the stack == op.solve per column, with equal charges."""
    nrhs = rhs.shape[0]
    with OpCounter() as cm:
        um = op.solve(rhs, dv)
    with OpCounter() as cc:
        if dv is None:
            uc = np.stack([op.solve(rhs[i]) for i in range(nrhs)])
        elif dv.ndim == 1:
            uc = np.stack([op.solve(rhs[i], dv) for i in range(nrhs)])
        else:
            uc = np.stack([op.solve(rhs[i], dv[i]) for i in range(nrhs)])
    scale = float(np.max(np.abs(uc))) or 1.0
    np.testing.assert_allclose(um, uc, rtol=0.0, atol=1e-12 * max(1.0, scale))
    assert_same_charges(cm, cc)


@given(
    st.integers(0, 2),
    st.integers(2, 8),
    st.integers(2, 6),
    st.sampled_from(["none", "shared", "per-rhs"]),
    st.integers(0, 10_000),
)
@settings(max_examples=12, deadline=None)
def test_condensed_multi_rhs_matches_columns(kind, order, nrhs, bc, seed):
    mesh = make_mesh(kind)
    space = FunctionSpace(mesh, order, batched=True)
    mats = space.elemental_matrices("helmholtz", 0.8)
    rng = np.random.default_rng(seed)
    bnd = space.dofmap.boundary_dofs()
    dofs = () if bc == "none" else bnd[: max(1, bnd.size // 3)]
    op = CondensedOperator(space, mats, dofs)
    rhs = rng.standard_normal((nrhs, space.ndof))
    if bc == "none":
        dv = None
    elif bc == "shared":
        dv = rng.standard_normal(len(dofs))
    else:
        dv = rng.standard_normal((nrhs, len(dofs)))
    assert_matches_columns(op, rhs, dv)


@given(
    st.integers(0, 2),
    st.integers(2, 8),
    st.integers(2, 6),
    st.sampled_from(["none", "shared", "per-rhs"]),
    st.integers(0, 10_000),
)
@settings(max_examples=12, deadline=None)
def test_assembled_multi_rhs_matches_columns(kind, order, nrhs, bc, seed):
    mesh = make_mesh(kind)
    space = FunctionSpace(mesh, order, batched=True)
    mats = space.elemental_matrices("helmholtz", 1.3)
    rng = np.random.default_rng(seed)
    bnd = space.dofmap.boundary_dofs()
    dofs = () if bc == "none" else bnd[: max(1, bnd.size // 3)]
    op = AssembledOperator(space, mats, dofs)
    rhs = rng.standard_normal((nrhs, space.ndof))
    if bc == "none":
        dv = None
    elif bc == "shared":
        dv = rng.standard_normal(len(dofs))
    else:
        dv = rng.standard_normal((nrhs, len(dofs)))
    assert_matches_columns(op, rhs, dv)


@given(
    st.integers(0, 1),
    st.integers(2, 8),
    st.integers(2, 5),
    st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_cg_multi_rhs_matches_columns(kind, order, nrhs, seed):
    """Block-PCG: per-column iterates, counts, and charges must match
    solo PCG exactly (the block loop only fuses the vector updates)."""
    mesh = make_mesh(kind)
    space = FunctionSpace(mesh, order, batched=True)
    solver = HelmholtzCG(space, 0.5, ("left", "top"))
    rng = np.random.default_rng(seed)
    rhs = rng.standard_normal((nrhs, space.ndof))
    dv = rng.standard_normal((nrhs, solver.dirichlet_dofs.size))
    with OpCounter() as cm:
        um = solver.solve_rhs(rhs, dv)
    iters_m = solver.last_iterations
    with OpCounter() as cc:
        uc = np.stack(
            [solver.solve_rhs(rhs[i], dv[i]) for i in range(nrhs)]
        )
    scale = float(np.max(np.abs(uc))) or 1.0
    np.testing.assert_allclose(um, uc, rtol=0.0, atol=1e-12 * max(1.0, scale))
    assert_same_charges(cm, cc)
    assert iters_m <= 10 * solver.free.size + 100
    assert iters_m > 0


def test_condensed_multi_rhs_zero_column():
    """An all-zero column rides along without perturbing its neighbours."""
    space = FunctionSpace(mixed_mesh(), 5, batched=True)
    mats = space.elemental_matrices("helmholtz", 1.0)
    op = CondensedOperator(space, mats)
    rng = np.random.default_rng(7)
    rhs = rng.standard_normal((3, space.ndof))
    rhs[1] = 0.0
    u = op.solve(rhs)
    np.testing.assert_allclose(u[1], 0.0, atol=1e-14)
    np.testing.assert_allclose(
        u[0], op.solve(rhs[0]), rtol=0.0, atol=1e-12
    )


def test_cg_multi_rhs_zero_column():
    space = FunctionSpace(rectangle_quads(2, 2), 4, batched=True)
    solver = HelmholtzCG(space, 1.0, ("left",))
    rng = np.random.default_rng(11)
    rhs = rng.standard_normal((3, space.ndof))
    rhs[1] = 0.0
    u = solver.solve_rhs(rhs, np.zeros((3, solver.dirichlet_dofs.size)))
    np.testing.assert_allclose(u[1], 0.0, atol=1e-14)
