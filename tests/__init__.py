# test package
