import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.mapping import ElementMap, GeomFactors
from repro.spectral.expansions import QuadExpansion, TriExpansion

REF_TRI = np.array([[-1.0, -1.0], [1.0, -1.0], [-1.0, 1.0]])
REF_QUAD = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])


def test_identity_maps():
    s = np.linspace(-0.9, 0.9, 5)
    tri = ElementMap(REF_TRI)
    x, y = tri.x(s, -s)
    np.testing.assert_allclose(x, s, atol=1e-14)
    np.testing.assert_allclose(y, -s, atol=1e-14)
    quad = ElementMap(REF_QUAD)
    x, y = quad.x(s, s**2 - 0.5)
    np.testing.assert_allclose(x, s, atol=1e-14)
    np.testing.assert_allclose(y, s**2 - 0.5, atol=1e-14)


def test_identity_jacobian():
    for coords in (REF_TRI, REF_QUAD):
        emap = ElementMap(coords)
        j = emap.jacobian(np.array([0.1]), np.array([-0.2]))
        np.testing.assert_allclose(j[0], np.eye(2), atol=1e-14)


def test_affine_triangle_constant_jacobian():
    coords = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 3.0]])
    emap = ElementMap(coords)
    s = np.linspace(-0.8, 0.5, 6)
    det = emap.det_jacobian(s, -0.9 * np.ones_like(s))
    np.testing.assert_allclose(det, det[0])
    # Area = |det| * reference area (2) => det = area / 2 = 3/2.
    assert det[0] == pytest.approx(1.5)


def test_bilinear_quad_varying_jacobian():
    coords = np.array([[0.0, 0.0], [2.0, 0.0], [3.0, 2.0], [0.0, 1.0]])
    emap = ElementMap(coords)
    det = emap.det_jacobian(np.array([-0.5, 0.5]), np.array([0.0, 0.0]))
    assert det[0] != pytest.approx(det[1])
    assert np.all(det > 0)


def test_invalid_coords_shape():
    with pytest.raises(ValueError):
        ElementMap(np.zeros((5, 2)))


@given(st.sampled_from([2, 3, 4, 5]))
@settings(max_examples=8, deadline=None)
def test_geomfactors_integrate_area(P):
    tri_coords = np.array([[0.0, 0.0], [1.0, 0.1], [0.2, 1.3]])
    gf = GeomFactors.compute(TriExpansion(P), tri_coords)
    area = 0.5 * abs(
        (tri_coords[1, 0] - tri_coords[0, 0]) * (tri_coords[2, 1] - tri_coords[0, 1])
        - (tri_coords[2, 0] - tri_coords[0, 0]) * (tri_coords[1, 1] - tri_coords[0, 1])
    )
    assert gf.jw.sum() == pytest.approx(area, rel=1e-12)
    quad_coords = np.array([[0.0, 0.0], [2.0, 0.0], [2.5, 1.5], [0.0, 1.0]])
    gfq = GeomFactors.compute(QuadExpansion(P), quad_coords)
    # Shoelace area of the quad.
    x, y = quad_coords[:, 0], quad_coords[:, 1]
    area_q = 0.5 * abs(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))
    assert gfq.jw.sum() == pytest.approx(area_q, rel=1e-12)


def test_geomfactors_kind_mismatch():
    with pytest.raises(ValueError):
        GeomFactors.compute(TriExpansion(3), REF_QUAD)


def test_geomfactors_inverted_element_rejected():
    bad = REF_TRI[::-1]  # clockwise
    with pytest.raises(ValueError):
        GeomFactors.compute(TriExpansion(3), bad)


def test_physical_gradients_linear_function():
    # u = 3x - 2y has constant gradient (3, -2) whatever the element.
    coords = np.array([[0.0, 0.0], [2.0, 0.3], [2.2, 1.9], [-0.1, 1.4]])
    exp = QuadExpansion(4)
    gf = GeomFactors.compute(exp, coords)
    emap = ElementMap(coords)
    A, B = exp.rule.points
    x, y = emap.x(A, B)
    u = 3.0 * x - 2.0 * y
    coeffs = exp.forward(u)  # reference-space projection is fine for values
    dx, dy = gf.physical_gradients(exp.dphi1, exp.dphi2)
    np.testing.assert_allclose(dx.T @ coeffs, 3.0, atol=1e-9)
    np.testing.assert_allclose(dy.T @ coeffs, -2.0, atol=1e-9)
