"""Curved walls for arbitrary body profiles (wing included)."""

import numpy as np
import pytest

from repro.assembly.boundary import build_edge_quadrature
from repro.assembly.space import FunctionSpace
from repro.mesh.generators import body_fitted_mesh, circle_profile, wing_mesh


def test_generic_curved_wall_matches_circle():
    mesh = body_fitted_mesh(circle_profile(0.5), m=3, nr=1, curved=True)
    space = FunctionSpace(mesh, 5)
    area = space.integrate(np.ones((space.nelem, space.nq)))
    assert area == pytest.approx(400.0 - np.pi * 0.25, rel=1e-8)
    quads = build_edge_quadrature(space, mesh.boundary_sides("wall"))
    # Wall quadrature points lie exactly on the circle.
    for eq in quads:
        np.testing.assert_allclose(np.hypot(eq.x, eq.y), 0.5, atol=1e-12)


def test_curved_wing_mesh_valid():
    mesh = wing_mesh(m=6, nr=1, curved=True)
    assert len(mesh.curves) == len(mesh.boundary_tags["wall"])
    space = FunctionSpace(mesh, 4)  # raises on inverted elements
    quads = build_edge_quadrature(space, mesh.boundary_sides("wall"))
    total = sum(eq.jw.sum() for eq in quads)
    # The NACA 4420 perimeter is a bit over twice the chord.
    assert 2.0 < total < 2.6
    # Curved wall points deviate from the straight-sided polygon.
    straight = wing_mesh(m=6, nr=1, curved=False)
    sp_s = FunctionSpace(straight, 4)
    a_c = space.integrate(np.ones((space.nelem, space.nq)))
    a_s = sp_s.integrate(np.ones((sp_s.nelem, sp_s.nq)))
    assert a_c != pytest.approx(a_s, abs=1e-6)


def test_curved_wall_helmholtz_solve_runs():
    mesh = wing_mesh(m=6, nr=1, curved=True)
    space = FunctionSpace(mesh, 3)
    from repro.solvers.helmholtz import HelmholtzDirect

    solver = HelmholtzDirect(space, 1.0, ("inflow", "wall"))
    u_hat = solver.solve(lambda x, y: 1.0)
    assert np.isfinite(space.backward(u_hat)).all()
