import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.mesh.curved import BlendedQuadMap, circular_arc, make_element_map
from repro.mesh.generators import annulus_mesh, bluff_body_mesh
from repro.mesh.mapping import ElementMap


def test_circular_arc_interpolates_and_stays_on_circle():
    p0 = np.array([1.0, 0.0])
    p1 = np.array([0.0, 1.0])
    arc = circular_arc(p0, p1)
    s = np.linspace(-1, 1, 11)
    x, y = arc(s)
    np.testing.assert_allclose([x[0], y[0]], p0, atol=1e-14)
    np.testing.assert_allclose([x[-1], y[-1]], p1, atol=1e-14)
    np.testing.assert_allclose(np.hypot(x, y), 1.0, atol=1e-14)


def test_circular_arc_takes_minor_arc():
    # p0 at -80 deg, p1 at +80 deg: the arc must pass through 0 deg,
    # not wrap the long way.
    a = np.deg2rad(80.0)
    arc = circular_arc((np.cos(-a), np.sin(-a)), (np.cos(a), np.sin(a)))
    x, y = arc(np.array([0.0]))
    assert x[0] == pytest.approx(1.0)
    assert abs(y[0]) < 1e-12


def test_blended_map_reduces_to_bilinear_without_curves():
    coords = np.array([[0.0, 0.0], [2.0, 0.1], [2.2, 1.9], [0.0, 1.5]])
    plain = ElementMap(coords)
    blended = BlendedQuadMap(coords, {})
    s = np.linspace(-0.9, 0.9, 7)
    for a, b in ((s, s), (s, -s)):
        np.testing.assert_allclose(blended.x(a, b), plain.x(a, b), atol=1e-14)
        np.testing.assert_allclose(
            blended.jacobian(a, b), plain.jacobian(a, b), atol=1e-12
        )


def test_blended_map_edge_follows_curve():
    # Unit square with a bulged bottom edge.
    coords = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])
    bump = lambda s: (s, -1.0 + 0.2 * (1 - s**2))  # noqa: E731
    m = BlendedQuadMap(coords, {0: lambda s: bump(np.asarray(s))})
    s = np.linspace(-1, 1, 9)
    x, y = m.x(s, -np.ones_like(s))
    np.testing.assert_allclose(y, -1.0 + 0.2 * (1 - s**2), atol=1e-12)
    # The opposite edge is unaffected.
    x2, y2 = m.x(s, np.ones_like(s))
    np.testing.assert_allclose(y2, 1.0, atol=1e-13)


def test_blended_map_jacobian_matches_fd():
    coords = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])
    arc = circular_arc(coords[0], coords[1], center=(0.0, -3.0))
    m = BlendedQuadMap(coords, {0: arc})
    pts = np.linspace(-0.8, 0.8, 5)
    h = 1e-6
    j = m.jacobian(pts, pts**2 - 0.3)
    for col, (d1, d2) in enumerate([(h, 0.0), (0.0, h)]):
        xp = m.x(pts + d1, pts**2 - 0.3 + d2)
        xm = m.x(pts - d1, pts**2 - 0.3 - d2)
        np.testing.assert_allclose(
            j[:, 0, col], (xp[0] - xm[0]) / (2 * h), rtol=1e-5, atol=1e-6
        )
        np.testing.assert_allclose(
            j[:, 1, col], (xp[1] - xm[1]) / (2 * h), rtol=1e-5, atol=1e-6
        )


def test_curve_endpoint_validation():
    coords = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])
    with pytest.raises(ValueError):
        BlendedQuadMap(coords, {0: lambda s: (np.asarray(s), np.asarray(s) * 0.0)})
    with pytest.raises(ValueError):
        BlendedQuadMap(coords, {7: circular_arc(coords[0], coords[1])})


def test_curved_tri_rejected():
    tri = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    with pytest.raises(ValueError):
        BlendedQuadMap(tri, {})


def test_make_element_map_selects_curved():
    mesh = bluff_body_mesh(m=3, nr=1, curved=True)
    assert mesh.curves
    (ei, le), _ = next(iter(mesh.curves.items()))
    assert isinstance(make_element_map(mesh, ei), BlendedQuadMap)
    other = next(e for e in range(mesh.nelements) if all(k[0] != e for k in mesh.curves))
    assert not isinstance(make_element_map(mesh, other), BlendedQuadMap)


def test_annulus_area_exact_with_curves():
    exact = np.pi * (1.0**2 - 0.5**2)
    curved = annulus_mesh(8, 2, curved=True)
    straight = annulus_mesh(8, 2, curved=False)
    sp_c = FunctionSpace(curved, 5)
    sp_s = FunctionSpace(straight, 5)
    area_c = sp_c.integrate(np.ones((sp_c.nelem, sp_c.nq)))
    area_s = sp_s.integrate(np.ones((sp_s.nelem, sp_s.nq)))
    assert area_c == pytest.approx(exact, rel=1e-6)
    assert abs(area_s - exact) > 1e-2  # polygonal error is visible


def test_bluff_body_curved_area():
    exact = 40.0 * 10.0 - np.pi * 0.25
    mesh = bluff_body_mesh(m=3, nr=1, curved=True)
    space = FunctionSpace(mesh, 5)
    area = space.integrate(np.ones((space.nelem, space.nq)))
    assert area == pytest.approx(exact, rel=1e-6)


def test_laplace_on_annulus_spectral_convergence():
    # u = ln(r) is harmonic; Dirichlet on both circles.  Only a curved
    # geometry can converge spectrally here.
    from repro.solvers.helmholtz import solve_poisson

    errs = []
    for P in (2, 3, 4, 6):
        mesh = annulus_mesh(8, 1, curved=True)
        space = FunctionSpace(mesh, P)
        g = lambda x, y: float(np.log(np.hypot(x, y)))  # noqa: E731
        u_hat = solve_poisson(space, lambda x, y: 0.0, ("inner", "outer"), g)
        xq, yq = space.coords()
        errs.append(space.norm_l2(space.backward(u_hat) - np.log(np.hypot(xq, yq))))
    assert errs[1] < errs[0] / 3
    assert errs[2] < errs[1] / 3
    assert errs[3] < 1e-5


def test_curved_wall_boundary_quadrature():
    from repro.assembly.boundary import build_edge_quadrature

    mesh = bluff_body_mesh(m=3, nr=1, curved=True)
    space = FunctionSpace(mesh, 4)
    quads = build_edge_quadrature(space, space.mesh.boundary_sides("wall"))
    # Curved edges: total wall length is the exact circle perimeter.
    total = sum(eq.jw.sum() for eq in quads)
    assert total == pytest.approx(np.pi, rel=1e-8)
    # Normals are radial.
    for eq in quads:
        r = np.hypot(eq.x, eq.y)
        np.testing.assert_allclose(r, 0.5, atol=1e-12)
        np.testing.assert_allclose(eq.nx, -eq.x / r, atol=1e-7)
        np.testing.assert_allclose(eq.ny, -eq.y / r, atol=1e-7)
