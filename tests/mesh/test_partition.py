import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.generators import bluff_body_mesh, rectangle_quads
from repro.mesh.partition import (
    edge_cut,
    imbalance,
    interface_edges,
    partition_graph,
    partition_mesh,
)


def test_single_part_trivial():
    mesh = rectangle_quads(4, 4)
    parts = partition_mesh(mesh, 1)
    assert np.all(parts == 0)


@given(st.sampled_from([2, 4, 8]), st.sampled_from(["spectral", "multilevel"]))
@settings(max_examples=12, deadline=None)
def test_partition_balanced(nparts, method):
    mesh = rectangle_quads(8, 8)
    parts = partition_mesh(mesh, nparts, method=method)
    assert parts.shape == (64,)
    assert set(np.unique(parts)) == set(range(nparts))
    assert imbalance(parts, nparts) <= 1.1


def test_partition_beats_strips_on_square():
    # On an 8x8 grid into 8 parts, x-strips cut 7 full columns = 56 edges;
    # a 2-D-aware partitioner must do better.
    mesh = rectangle_quads(8, 8)
    g = mesh.dual_graph()
    strips = partition_mesh(mesh, 8, method="strips")
    smart = partition_mesh(mesh, 8, method="multilevel")
    assert edge_cut(g, smart) < edge_cut(g, strips)


def test_spectral_bisection_of_grid_is_halving():
    mesh = rectangle_quads(8, 4)
    g = mesh.dual_graph()
    parts = partition_mesh(mesh, 2, method="spectral")
    assert imbalance(parts, 2) == pytest.approx(1.0)
    # Ideal vertical cut severs 4 edges; allow a little slack.
    assert edge_cut(g, parts) <= 8


def test_partition_bluff_body_mesh():
    mesh = bluff_body_mesh(m=4, nr=2)
    g = mesh.dual_graph()
    for nparts in (2, 4):
        parts = partition_mesh(mesh, nparts, method="multilevel")
        assert imbalance(parts, nparts) <= 1.15
        assert edge_cut(g, parts) < g.number_of_edges() / 2


def test_interface_edges_match_cut():
    mesh = rectangle_quads(6, 6)
    parts = partition_mesh(mesh, 4)
    iface = interface_edges(mesh, parts)
    assert len(iface) == edge_cut(mesh.dual_graph(), parts)
    for eid in iface:
        (e0, _), (e1, _) = mesh.edges[eid].elements
        assert parts[e0] != parts[e1]


def test_partition_graph_validation():
    g = nx.path_graph(4)
    with pytest.raises(ValueError):
        partition_graph(g, 0)
    with pytest.raises(ValueError):
        partition_graph(g, 5)
    with pytest.raises(ValueError):
        partition_graph(g, 2, method="magic")


def test_partition_path_graph_contiguous():
    g = nx.path_graph(16)
    parts = partition_graph(g, 4)
    assert imbalance(parts, 4) == pytest.approx(1.0)
    # Optimal cut for a path into 4 parts is 3.
    assert edge_cut(g, parts) <= 5


def test_partition_disconnected_graph():
    g = nx.union(nx.path_graph(8), nx.relabel_nodes(nx.path_graph(8), lambda n: n + 8))
    parts = partition_graph(g, 2)
    assert imbalance(parts, 2) == pytest.approx(1.0)


def test_strips_baseline_ordering():
    mesh = rectangle_quads(8, 2)
    parts = partition_mesh(mesh, 4, method="strips")
    cents = mesh.centroids()
    # Strip index must be nondecreasing with centroid x.
    order = np.argsort(cents[:, 0], kind="stable")
    assert np.all(np.diff(parts[order]) >= 0)


def test_imbalance_metric():
    assert imbalance(np.array([0, 0, 1, 1]), 2) == pytest.approx(1.0)
    assert imbalance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)
