import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.generators import (
    bluff_body_mesh,
    body_fitted_mesh,
    circle_profile,
    naca_profile,
    rectangle_quads,
    rectangle_tris,
    wing_mesh,
)


@given(st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_rectangle_quads_counts_and_area(nx, ny):
    mesh = rectangle_quads(nx, ny, 0.0, 2.0, 0.0, 1.0)
    assert mesh.nelements == nx * ny
    assert mesh.nvertices == (nx + 1) * (ny + 1)
    assert np.all(mesh.element_areas() > 0)
    assert mesh.element_areas().sum() == pytest.approx(2.0)
    assert len(mesh.boundary_tags["left"]) == ny
    assert len(mesh.boundary_tags["bottom"]) == nx
    assert len(mesh.untagged_boundary_sides()) == 0


@given(st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=10, deadline=None)
def test_rectangle_tris_counts_and_area(nx, ny):
    mesh = rectangle_tris(nx, ny)
    assert mesh.nelements == 2 * nx * ny
    assert np.all(mesh.element_areas() > 0)
    assert mesh.element_areas().sum() == pytest.approx(4.0)
    assert len(mesh.untagged_boundary_sides()) == 0


def test_rectangle_invalid():
    with pytest.raises(ValueError):
        rectangle_quads(0, 3)


def test_circle_profile_radius():
    prof = circle_profile(0.5)
    t = np.linspace(0, 1, 17, endpoint=False)
    x, y = prof(t)
    np.testing.assert_allclose(np.hypot(x, y), 0.5, rtol=1e-12)


def test_naca_profile_closed_and_sane():
    prof = naca_profile("4420")
    t = np.linspace(0, 1, 64, endpoint=False)
    x, y = prof(t)
    # Chordwise extent roughly [-0.4, 0.6] after recentring on 0.4 chord.
    assert x.min() == pytest.approx(-0.4, abs=0.05)
    assert x.max() == pytest.approx(0.6, abs=0.05)
    # 20% thickness: max |y| about 0.1 or a bit more with camber.
    assert 0.05 < np.abs(y).max() < 0.2


def test_naca_profile_invalid_code():
    with pytest.raises(ValueError):
        naca_profile("44")
    with pytest.raises(ValueError):
        naca_profile("44x0")


def test_bluff_body_mesh_valid():
    mesh = bluff_body_mesh(m=4, nr=2)
    assert np.all(mesh.element_areas() > 0)
    # Domain area minus body area.
    domain = 40.0 * 10.0
    body = np.pi * 0.5**2
    # Straight-sided polygonal body: area within a few percent.
    assert mesh.element_areas().sum() == pytest.approx(domain - body, rel=0.02)
    assert len(mesh.untagged_boundary_sides()) == 0
    for tag in ("inflow", "outflow", "side", "wall"):
        assert mesh.boundary_tags[tag]
    # Wall edges all lie on the cylinder.
    for ei, le in mesh.boundary_tags["wall"]:
        a, b = mesh.elements[ei].edge_vertices(le)
        for v in (a, b):
            assert np.hypot(*mesh.vertices[v]) == pytest.approx(0.5, abs=1e-12)


def test_bluff_body_mesh_refinement_scales_elements():
    m1 = bluff_body_mesh(refine=1)
    m2 = bluff_body_mesh(refine=2)
    assert m2.nelements > 3 * m1.nelements


def test_bluff_body_mesh_connected():
    import networkx as nx

    mesh = bluff_body_mesh()
    assert nx.is_connected(mesh.dual_graph())


def test_wing_mesh_valid():
    mesh = wing_mesh()
    assert np.all(mesh.element_areas() > 0)
    assert len(mesh.untagged_boundary_sides()) == 0
    assert mesh.boundary_tags["wall"]


def test_body_fitted_rejects_bad_geometry():
    with pytest.raises(ValueError):
        body_fitted_mesh(circle_profile(), half_width=20.0)  # square outside domain
    with pytest.raises(ValueError):
        body_fitted_mesh(circle_profile(), m=0)


def test_body_fitted_ring_conforms_to_frame():
    # Every edge is shared by <= 2 elements (the Mesh2D constructor would
    # raise otherwise); additionally no hanging nodes:
    mesh = body_fitted_mesh(circle_profile(), m=3, nr=1)
    # Count boundary edges = perimeter cells of domain + body wall cells.
    nb = len(mesh.boundary_edges())
    ntags = sum(len(v) for v in mesh.boundary_tags.values())
    assert nb == ntags
