import numpy as np
import pytest

from repro.mesh.mesh2d import Element, Mesh2D


def two_quads():
    #  3---4---5
    #  |   |   |
    #  0---1---2
    verts = np.array([[0, 0], [1, 0], [2, 0], [0, 1], [1, 1], [2, 1]], dtype=float)
    elems = [(0, 1, 4, 3), (1, 2, 5, 4)]
    return Mesh2D(verts, elems)


def test_element_validation():
    with pytest.raises(ValueError):
        Element((0, 1))
    with pytest.raises(ValueError):
        Element((0, 1, 1))
    assert Element((0, 1, 2)).kind == "tri"
    assert Element((0, 1, 2, 3)).kind == "quad"


def test_vertices_shape_validation():
    with pytest.raises(ValueError):
        Mesh2D(np.zeros((3, 3)), [(0, 1, 2)])
    with pytest.raises(ValueError):
        Mesh2D(np.zeros((2, 2)), [(0, 1, 2)])  # unknown vertex


def test_edge_table_two_quads():
    mesh = two_quads()
    assert mesh.nelements == 2
    assert mesh.nedges == 7
    shared = [e for e in mesh.edges if len(e.elements) == 2]
    assert len(shared) == 1
    assert shared[0].vertices == (1, 4)
    assert len(mesh.boundary_edges()) == 6


def test_edge_orientation_canonical():
    mesh = two_quads()
    # Element 0 edge 1 is (1, 4): intrinsic 1->4 matches canonical low->high.
    assert mesh.edge_orientation(0, 1) == 1
    # Element 1 edge 3 is (1, 4) as intrinsic (v0, v3) = (1, 4): also 1->4.
    assert mesh.edge_orientation(1, 3) == 1
    # Element 0 edge 2 is (3, 4): intrinsic direction v3->v2 = 3->4: +1.
    assert mesh.edge_orientation(0, 2) == 1


def test_mixed_tri_quad_mesh():
    verts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [2, 0.5]], dtype=float)
    elems = [(0, 1, 2, 3), (1, 4, 2)]
    mesh = Mesh2D(verts, elems)
    assert mesh.elements[0].kind == "quad"
    assert mesh.elements[1].kind == "tri"
    shared = [e for e in mesh.edges if len(e.elements) == 2]
    assert len(shared) == 1 and shared[0].vertices == (1, 2)


def test_nonmanifold_rejected():
    verts = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, -1]], dtype=float)
    elems = [(0, 1, 2), (1, 3, 2), (0, 1, 4), (0, 1, 3)]  # edge (0,1) x3
    with pytest.raises(ValueError):
        Mesh2D(verts, elems)


def test_boundary_tags_validated():
    verts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
    elems = [(0, 1, 2, 3)]
    Mesh2D(verts, elems, {"all": [(0, 0), (0, 1), (0, 2), (0, 3)]})
    with pytest.raises(ValueError):
        Mesh2D(verts, elems, {"bad": [(1, 0)]})


def test_boundary_sides_and_untagged():
    mesh = two_quads()
    assert len(mesh.boundary_sides()) == 6
    assert len(mesh.untagged_boundary_sides()) == 6
    with pytest.raises(KeyError):
        mesh.boundary_sides("nope")


def test_element_areas_and_centroids():
    mesh = two_quads()
    np.testing.assert_allclose(mesh.element_areas(), [1.0, 1.0])
    np.testing.assert_allclose(mesh.centroids(), [[0.5, 0.5], [1.5, 0.5]])


def test_dual_graph():
    g = two_quads().dual_graph()
    assert g.number_of_nodes() == 2
    assert g.number_of_edges() == 1
    assert g.has_edge(0, 1)


def test_vertex_graph():
    g = two_quads().vertex_graph()
    assert g.number_of_nodes() == 6
    assert g.number_of_edges() == 7
