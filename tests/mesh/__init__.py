# test package
