"""Campaign CLI: run/resume/search with the shared exit-code convention."""

import json

import pytest

from repro.apps import campaign as campaign_cli

# Two fast jobs: enough to exercise run -> report -> resume -> search.
TINY = {
    "nprocs": 2,
    "machines": ["RoadRunner"],
    "networks": ["RoadRunner, eth-internode", "RoadRunner, myr-internode"],
    "fault_plans": ["none"],
    "workloads": [{"workload": "ring", "rounds": 3, "ndoubles": 32}],
}


@pytest.fixture()
def matrix_file(tmp_path):
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(TINY))
    return str(path)


def test_run_and_resume_roundtrip(tmp_path, matrix_file, capsys):
    ledger = str(tmp_path / "RUNLOG.jsonl")
    out = tmp_path / "BENCH_campaign.json"
    art = str(tmp_path / "graphs")
    argv = [
        "run",
        "--ledger",
        ledger,
        "--matrix",
        matrix_file,
        "--artifacts",
        art,
        "--out",
        str(out),
    ]
    assert campaign_cli.main(argv) == 0
    text = capsys.readouterr().out
    assert "2 job(s), 0 skipped" in text and "2 ran, 0 failed" in text
    report = json.loads(out.read_text())
    assert report["jobs"]["completed"] == 2
    # Resume over a complete campaign: all skipped, byte-identical report.
    assert campaign_cli.main(argv) == 0
    assert "2 skipped (already complete), 0 ran" in capsys.readouterr().out
    assert json.loads(out.read_text()) == report


def test_run_failed_jobs_gate_exit(tmp_path, capsys):
    matrix = dict(TINY, fault_plans=["crash"])
    mfile = tmp_path / "m.json"
    mfile.write_text(json.dumps(matrix))
    rc = campaign_cli.main(
        ["run", "--ledger", str(tmp_path / "lg.jsonl"), "--matrix", str(mfile)]
    )
    assert rc == 1
    assert "failed: ring/" in capsys.readouterr().err


def test_run_without_matrix_is_usage_error(tmp_path, capsys):
    rc = campaign_cli.main(["run", "--ledger", str(tmp_path / "lg.jsonl")])
    assert rc == 2
    assert "need --matrix FILE or --smoke" in capsys.readouterr().err


def test_run_missing_matrix_file_is_usage_error(tmp_path, capsys):
    rc = campaign_cli.main(
        [
            "run",
            "--ledger",
            str(tmp_path / "lg.jsonl"),
            "--matrix",
            str(tmp_path / "nope.json"),
        ]
    )
    assert rc == 2
    assert "matrix file not found" in capsys.readouterr().err


def test_run_invalid_matrix_contents_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(dict(TINY, machines=["NoSuchMachine"])))
    rc = campaign_cli.main(
        ["run", "--ledger", str(tmp_path / "lg.jsonl"), "--matrix", str(bad)]
    )
    assert rc == 2
    assert "unknown machine" in capsys.readouterr().err


def test_search_over_recorded_campaign(tmp_path, matrix_file, capsys):
    ledger = str(tmp_path / "RUNLOG.jsonl")
    art = str(tmp_path / "graphs")
    assert (
        campaign_cli.main(
            [
                "run",
                "--ledger",
                ledger,
                "--matrix",
                matrix_file,
                "--artifacts",
                art,
            ]
        )
        == 0
    )
    capsys.readouterr()
    out = tmp_path / "SEARCH.json"
    rc = campaign_cli.main(
        [
            "search",
            "--ledger",
            ledger,
            "--artifacts",
            art,
            "--target",
            "inf",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "cheapest meeting" in text and "roadrunner-ethernet" in text
    result = json.loads(out.read_text())
    assert result["cheapest"]["name"] == "roadrunner-ethernet"
    # Infeasible target: the gate exit, not a usage error.
    rc = campaign_cli.main(
        ["search", "--ledger", ledger, "--artifacts", art, "--target", "0"]
    )
    assert rc == 1
    assert "no candidate meets target" in capsys.readouterr().err


def test_search_missing_inputs_are_usage_errors(tmp_path, capsys):
    rc = campaign_cli.main(
        [
            "search",
            "--ledger",
            str(tmp_path / "nope.jsonl"),
            "--artifacts",
            str(tmp_path),
            "--target",
            "1",
        ]
    )
    assert rc == 2
    ledger = tmp_path / "lg.jsonl"
    ledger.write_text("")
    rc = campaign_cli.main(
        [
            "search",
            "--ledger",
            str(ledger),
            "--artifacts",
            str(tmp_path / "noart"),
            "--target",
            "1",
        ]
    )
    assert rc == 2
    rc = campaign_cli.main(
        [
            "search",
            "--ledger",
            str(ledger),
            "--artifacts",
            str(tmp_path),
            "--target",
            "1",
        ]
    )
    assert rc == 2  # ledger exists but holds no recorded graphs
    err = capsys.readouterr().err
    assert err.count("error:") == 3
