"""Campaign engine: expansion, cache sharing, resume, search.

The acceptance scenario (ISSUE 10): a 24-job campaign (2 machines x 2
networks x 2 fault plans x 3 workload shapes) runs concurrently,
resumes after a mid-campaign kill with zero duplicate work and
byte-equivalent deterministic values, shares the operator cache across
jobs, and ``search`` reproduces the paper's Ethernet-vs-Myrinet cost
ordering from recorded graphs without re-running anything.
"""

import json
import threading

import pytest

from repro.campaign import (
    CampaignEngine,
    JobSpec,
    OperatorCache,
    campaign_report,
    expand_matrix,
    smoke_matrix,
)
from repro.campaign.search import load_graphs, search_catalog
from repro.obs.runlog import RunLedger

# A reduced matrix for the fast tests: 8 jobs, both fabrics, both fault
# classes, two workload shapes (one cache-bearing).
SMALL = {
    "nprocs": 3,
    "machines": ["RoadRunner"],
    "networks": ["RoadRunner, eth-internode", "RoadRunner, myr-internode"],
    "fault_plans": ["none", "loss"],
    "workloads": [
        # ring needs >= 3 steps so the crash plan's at_step=2 can fire.
        {"workload": "ring", "rounds": 3, "ndoubles": 64},
        {"workload": "helmholtz", "nx": 1, "ny": 1, "order": 3, "lam": 1.0},
    ],
}


# ------------------------------------------------------------------ matrix


def test_expand_matrix_cross_product_and_order():
    jobs = expand_matrix(SMALL)
    assert len(jobs) == 1 * 2 * 2 * 2
    # Deterministic machine-major order; distinct fingerprints.
    assert jobs[0].network == jobs[1].network == "RoadRunner, eth-internode"
    assert len({j.fingerprint for j in jobs}) == len(jobs)


def test_smoke_matrix_is_the_acceptance_shape():
    jobs = expand_matrix(smoke_matrix())
    assert len(jobs) == 24  # 2 machines x 2 networks x 2 plans x 3 shapes
    assert len({j.machine for j in jobs}) == 2
    assert len({j.network for j in jobs}) == 2
    assert len({j.fault_plan for j in jobs}) == 2
    assert len({j.workload for j in jobs}) == 3


def test_jobspec_validates_catalog_names():
    with pytest.raises(ValueError, match="unknown machine"):
        JobSpec("NoSuch", "T3E", "none", "ring", 2)
    with pytest.raises(ValueError, match="unknown network"):
        JobSpec("T3E", "NoSuch", "none", "ring", 2)
    with pytest.raises(ValueError, match="unknown fault plan"):
        JobSpec("T3E", "T3E", "nope", "ring", 2)
    with pytest.raises(ValueError, match="missing required key"):
        expand_matrix({"machines": []})


def test_fingerprint_ignores_dict_order_but_not_params():
    a = JobSpec("T3E", "T3E", "none", "ring", 2, {"rounds": 2, "ndoubles": 8})
    b = JobSpec("T3E", "T3E", "none", "ring", 2, {"ndoubles": 8, "rounds": 2})
    c = JobSpec("T3E", "T3E", "none", "ring", 2, {"rounds": 3, "ndoubles": 8})
    assert a.fingerprint == b.fingerprint != c.fingerprint


# ------------------------------------------------------------------ cache


def test_cache_single_flight_under_contention():
    """K concurrent askers of one key: exactly 1 miss, K-1 hits."""
    cache = OperatorCache()
    built = []
    gate = threading.Event()

    def build():
        gate.wait(5.0)
        built.append(1)
        return "obj"

    results = []
    threads = [
        threading.Thread(
            target=lambda: results.append(cache.get_or_build("k", build))
        )
        for _ in range(6)
    ]
    for t in threads:
        t.start()
    gate.set()
    for t in threads:
        t.join()
    assert built == [1]
    assert results == ["obj"] * 6
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 5
    assert stats["hit_rate"] == pytest.approx(5 / 6)


def test_cache_failed_build_poisons_key():
    cache = OperatorCache()

    def boom():
        raise RuntimeError("factorisation failed")

    with pytest.raises(RuntimeError, match="factorisation failed"):
        cache.get_or_build("bad", boom)
    # Later askers see the original failure, not a silent rebuild.
    with pytest.raises(RuntimeError, match="factorisation failed"):
        cache.get_or_build("bad", lambda: "never")


# ------------------------------------------------------------------ engine


def test_campaign_runs_all_jobs_and_shares_cache(tmp_path):
    eng = CampaignEngine(
        tmp_path / "lg.jsonl", SMALL, workers=4, artifacts_dir=tmp_path / "g"
    )
    out = eng.run()
    assert out["jobs"] == 8 and out["ran"] == 8 and out["skipped"] == 0
    assert out["failed"] == [] and not out["aborted"]
    # The helmholtz shape repeats (mesh, order, lam, machine) across the
    # 4 network/fault combinations: 1 miss + 3 hits.
    assert out["cache"]["misses"] == 1 and out["cache"]["hits"] == 3
    assert out["cache"]["hit_rate"] > 0
    # Per-job attribution aggregated across the campaign.
    assert out["aggregate"]["jobs"] == 8
    assert out["aggregate"]["total_makespan"] > 0
    # One graph artifact per job, loadable by search.
    assert len(list((tmp_path / "g").glob("graph-*.json"))) == 8


def test_campaign_records_planted_rank_failure_as_failed(tmp_path):
    matrix = dict(SMALL, fault_plans=["none", "crash"])
    eng = CampaignEngine(tmp_path / "lg.jsonl", matrix, workers=2)
    out = eng.run()
    crashed = [j for j in eng.jobs if j.fault_plan == "crash"]
    assert sorted(out["failed"]) == sorted(j.job_id for j in crashed)
    ledger = RunLedger(tmp_path / "lg.jsonl")
    for job in crashed:
        rec = ledger.records(fingerprint=job.fingerprint)[-1]
        assert rec["status"] == "failed"
        assert "RankFailure" in rec["error"]
    # Failed fingerprints are not complete: a resume re-runs them.
    assert ledger.completed(bench="campaign") == {
        j.fingerprint for j in eng.jobs if j.fault_plan != "crash"
    }


def test_resume_skips_completed_and_reruns_failed(tmp_path):
    """Satellite: kill mid-queue, restart, zero duplicate work.

    The interrupted campaign is killed two ways at once — a planted
    RankFailure (the crash fault plan) and a host-level abort
    (``stop_after``).  The restarted campaign must skip completed
    fingerprints, re-run pending AND failed jobs, and leave ledger
    values byte-equivalent to an uninterrupted run.
    """
    matrix = dict(SMALL, fault_plans=["none", "crash"])

    # Reference: one uninterrupted campaign.
    ref_led = RunLedger(tmp_path / "ref.jsonl")
    CampaignEngine(ref_led, matrix, workers=4).run()
    ref_report = campaign_report(ref_led, matrix)

    # Interrupted: host-level kill after 3 records.
    led = RunLedger(tmp_path / "killed.jsonl")
    first = CampaignEngine(led, matrix, workers=2)
    out1 = first.run(stop_after=3)
    assert out1["aborted"] and out1["ran"] == 3
    done_before = led.completed(bench="campaign")

    # Restart: completed fingerprints skipped, the rest (pending and any
    # crash-failed among the first 3) re-run.
    second = CampaignEngine(led, matrix, workers=4)
    out2 = second.run()
    assert not out2["aborted"]
    assert out2["skipped"] == len(done_before)
    assert out2["ran"] == 8 - len(done_before)
    # Zero duplicate work: nothing recorded twice as ok.
    ok_counts: dict[str, int] = {}
    for rec in led.records(bench="campaign"):
        if rec["status"] == "ok":
            ok_counts[rec["fingerprint"]] = (
                ok_counts.get(rec["fingerprint"], 0) + 1
            )
    assert all(n == 1 for n in ok_counts.values())

    # Byte-equivalence of deterministic values, interrupted vs not.
    resumed_report = campaign_report(led, matrix)
    assert json.dumps(resumed_report["per_job"], sort_keys=True) == json.dumps(
        ref_report["per_job"], sort_keys=True
    )
    assert resumed_report["jobs"] == ref_report["jobs"]


def test_rerun_of_complete_campaign_is_a_noop(tmp_path):
    led = RunLedger(tmp_path / "lg.jsonl")
    CampaignEngine(led, SMALL, workers=4).run()
    nlines = len(led.records())
    out = CampaignEngine(led, SMALL, workers=4).run()
    assert out["skipped"] == 8 and out["ran"] == 0
    assert len(led.records()) == nlines  # nothing appended


def test_campaign_values_independent_of_worker_count(tmp_path):
    """Concurrency must not leak into deterministic values."""
    reports = []
    for workers in (1, 4):
        led = RunLedger(tmp_path / f"w{workers}.jsonl")
        CampaignEngine(led, SMALL, workers=workers).run()
        reports.append(campaign_report(led, SMALL)["per_job"])
    assert json.dumps(reports[0], sort_keys=True) == json.dumps(
        reports[1], sort_keys=True
    )


# ------------------------------------------------------------------ search


@pytest.fixture(scope="module")
def recorded_campaign(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("campaign")
    led = RunLedger(tmp / "lg.jsonl")
    eng = CampaignEngine(led, SMALL, workers=4, artifacts_dir=tmp / "g")
    eng.run()
    return led, tmp / "g"


def test_search_reproduces_ethernet_vs_myrinet_cost_ordering(
    recorded_campaign,
):
    led, artifacts = recorded_campaign
    entries = load_graphs(led, artifacts)
    assert len(entries) == 8
    res = search_catalog(entries, target_makespan=float("inf"))
    by_name = {c["name"]: c for c in res["candidates"]}
    eth = by_name["roadrunner-ethernet"]
    myr = by_name["roadrunner-myrinet"]
    # The paper's Section 5 structure: Ethernet is cheaper, Myrinet is
    # faster — both recovered from recorded graphs, no re-running.
    assert eth["price_total"] < myr["price_total"]
    assert myr["predicted_makespan"] < eth["predicted_makespan"]
    # Loose target: the cheapest feasible config is Ethernet.
    loose = search_catalog(entries, eth["predicted_makespan"] * 1.01)
    assert loose["cheapest"]["name"] == "roadrunner-ethernet"
    # Tight target: Ethernet drops out, Myrinet is the cheapest left.
    tight = search_catalog(entries, eth["predicted_makespan"] * 0.5)
    assert tight["cheapest"]["name"] == "roadrunner-myrinet"
    assert not tight["candidates"][0]["meets_target"] or (
        tight["candidates"][0]["name"] != "roadrunner-ethernet"
    )


def test_search_infeasible_target(recorded_campaign):
    led, artifacts = recorded_campaign
    entries = load_graphs(led, artifacts)
    res = search_catalog(entries, target_makespan=0.0)
    assert res["cheapest"] is None and not res["feasible"]
    with pytest.raises(ValueError, match="no recorded graphs"):
        search_catalog([], 1.0)
