# test package
