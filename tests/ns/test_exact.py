import numpy as np
import pytest

from repro.ns.exact import Kovasznay, TaylorVortex


def fd_grad(f, x, y, h=1e-6):
    return (f(x + h, y) - f(x - h, y)) / (2 * h), (f(x, y + h) - f(x, y - h)) / (
        2 * h
    )


def test_kovasznay_divergence_free():
    kv = Kovasznay(40.0)
    x = np.linspace(-0.4, 0.9, 7)
    y = np.linspace(-0.4, 0.9, 7)
    dudx, _ = fd_grad(kv.u, x, y)
    _, dvdy = fd_grad(kv.v, x, y)
    np.testing.assert_allclose(dudx + dvdy, 0.0, atol=1e-6)


def test_kovasznay_satisfies_momentum():
    kv = Kovasznay(40.0)
    h = 1e-5
    x = np.linspace(-0.3, 0.8, 5)
    y = np.linspace(-0.2, 0.7, 5)
    u, v = kv.u(x, y), kv.v(x, y)
    dudx, dudy = fd_grad(kv.u, x, y, h)
    dpdx, _ = fd_grad(kv.p, x, y, h)
    lap_u = (
        kv.u(x + h, y) + kv.u(x - h, y) + kv.u(x, y + h) + kv.u(x, y - h) - 4 * u
    ) / h**2
    resid = u * dudx + v * dudy + dpdx - kv.nu * lap_u
    np.testing.assert_allclose(resid, 0.0, atol=1e-4)


def test_taylor_divergence_free_and_decay():
    tv = TaylorVortex(nu=0.1)
    x = np.linspace(0, 2, 6)
    y = np.linspace(0, 2, 6)
    dudx, _ = fd_grad(lambda a, b: tv.u(a, b, 0.3), x, y)
    _, dvdy = fd_grad(lambda a, b: tv.v(a, b, 0.3), x, y)
    np.testing.assert_allclose(dudx + dvdy, 0.0, atol=1e-6)
    # Exponential decay of the velocity field.
    assert tv.u(x, y, 1.0) == pytest.approx(tv.u(x, y, 0.0) * np.exp(-0.2), rel=1e-9)


def test_taylor_satisfies_momentum():
    tv = TaylorVortex(nu=0.07, k=1.0)
    h, t = 1e-5, 0.4
    x = np.linspace(0.1, 1.9, 5)
    y = np.linspace(0.2, 1.8, 5)
    u, v = tv.u(x, y, t), tv.v(x, y, t)
    dudt = (tv.u(x, y, t + h) - tv.u(x, y, t - h)) / (2 * h)
    dudx, dudy = fd_grad(lambda a, b: tv.u(a, b, t), x, y, h)
    dpdx, _ = fd_grad(lambda a, b: tv.p(a, b, t), x, y, h)
    lap_u = (
        tv.u(x + h, y, t)
        + tv.u(x - h, y, t)
        + tv.u(x, y + h, t)
        + tv.u(x, y - h, t)
        - 4 * u
    ) / h**2
    resid = dudt + u * dudx + v * dudy + dpdx - tv.nu * lap_u
    np.testing.assert_allclose(resid, 0.0, atol=1e-4)
