"""Circular (Taylor-)Couette flow: an exact steady NS solution on
curved geometry — the strongest combined test of curved elements,
boundary projection and the splitting scheme."""

import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import annulus_mesh
from repro.ns.nektar2d import NavierStokes2D

R0, R1, OMEGA = 0.5, 1.0, 1.0
# u_theta = A r + B / r with u_theta(R0) = OMEGA R0, u_theta(R1) = 0.
A = -OMEGA * R0**2 / (R1**2 - R0**2)
B = OMEGA * R0**2 * R1**2 / (R1**2 - R0**2)


def u_theta(r):
    return A * r + B / r


def exact_u(x, y):
    r = np.hypot(x, y)
    return -u_theta(r) * y / r


def exact_v(x, y):
    r = np.hypot(x, y)
    return u_theta(r) * x / r


@pytest.fixture(scope="module")
def couette():
    mesh = annulus_mesh(8, 1, R0, R1, curved=True)
    space = FunctionSpace(mesh, 6)
    bcs = {
        "inner": (
            lambda x, y, t: float(exact_u(x, y)),
            lambda x, y, t: float(exact_v(x, y)),
        ),
        "outer": (lambda x, y, t: 0.0, lambda x, y, t: 0.0),
    }
    ns = NavierStokes2D(space, nu=0.1, dt=5e-3, velocity_bcs=bcs)
    ns.set_initial(
        lambda x, y, t: exact_u(x, y), lambda x, y, t: exact_v(x, y)
    )
    ns.run(20)
    return ns, space


def test_stays_on_exact_solution(couette):
    ns, space = couette
    xq, yq = space.coords()
    u, v = ns.velocity()
    err_u = space.norm_l2(u - exact_u(xq, yq))
    err_v = space.norm_l2(v - exact_v(xq, yq))
    scale = space.norm_l2(exact_u(xq, yq) + 0 * xq) + 1e-30
    assert err_u / scale < 5e-3
    assert err_v / scale < 5e-3


def test_torque_on_inner_cylinder(couette):
    """The viscous torque per unit length on the inner cylinder is
    4 pi nu B (classic Couette result); check the wall traction
    machinery reproduces it on the curved wall."""
    from repro.assembly.boundary import build_edge_quadrature
    from repro.ns.forces import traction

    ns, space = couette
    quads = build_edge_quadrature(space, space.mesh.boundary_sides("inner"))
    torque = 0.0
    for eq in quads:
        tx_p, ty_p, tx_v, ty_v = traction(
            space, eq, ns.u_hat, ns.v_hat, ns.p_hat, ns.nu
        )
        tx, ty = tx_p + tx_v, ty_p + ty_v
        torque += eq.integrate(eq.x * ty - eq.y * tx)
    expect = -4.0 * np.pi * ns.nu * B
    assert torque == pytest.approx(expect, rel=0.02)


def test_divergence_free(couette):
    ns, space = couette
    assert ns.divergence_norm() < 1e-2
