import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads
from repro.ns.exact import Kovasznay, TaylorVortex
from repro.ns.nektar2d import NavierStokes2D
from repro.ns.stages import STAGES


def kovasznay_solver(P=7, dt=2e-3):
    kv = Kovasznay(40.0)
    mesh = rectangle_quads(2, 2, -0.5, 1.0, -0.5, 0.5)
    space = FunctionSpace(mesh, P)
    bc_u = lambda x, y, t: float(kv.u(x, y))  # noqa: E731
    bc_v = lambda x, y, t: float(kv.v(x, y))  # noqa: E731
    bcs = {t: (bc_u, bc_v) for t in ("left", "top", "bottom")}
    ns = NavierStokes2D(
        space, kv.nu, dt, bcs, pressure_dirichlet=("right",), time_order=2
    )
    ns.set_initial(lambda x, y, t: kv.u(x, y), lambda x, y, t: kv.v(x, y))
    return ns, kv, space


def taylor_solver(P, dt, nu=0.05, time_order=2):
    tv = TaylorVortex(nu=nu)
    mesh = rectangle_quads(2, 2, 0.0, np.pi, 0.0, np.pi)
    space = FunctionSpace(mesh, P)
    bc_u = lambda x, y, t: float(tv.u(x, y, t))  # noqa: E731
    bc_v = lambda x, y, t: float(tv.v(x, y, t))  # noqa: E731
    bcs = {t: (bc_u, bc_v) for t in ("left", "right", "top", "bottom")}
    ns = NavierStokes2D(space, nu, dt, bcs, time_order=time_order)
    ns.set_initial(lambda x, y, t: tv.u(x, y, 0.0), lambda x, y, t: tv.v(x, y, 0.0))
    return ns, tv, space


def test_invalid_parameters():
    space = FunctionSpace(rectangle_quads(1, 1), 3)
    with pytest.raises(ValueError):
        NavierStokes2D(space, -1.0, 0.01, {})
    with pytest.raises(ValueError):
        NavierStokes2D(space, 0.01, 0.0, {})


def test_kovasznay_stays_on_exact_solution():
    # Initialised at the exact steady solution, the solver must stay there.
    ns, kv, space = kovasznay_solver(P=7, dt=2e-3)
    xq, yq = space.coords()
    ns.run(20)
    u, v = ns.velocity()
    err_u = space.norm_l2(u - kv.u(xq, yq))
    err_v = space.norm_l2(v - kv.v(xq, yq))
    # Splitting error floor at dt = 2e-3; the flow must not drift away.
    assert err_u < 1e-3
    assert err_v < 1e-3


def test_kovasznay_convergence_from_perturbed_state():
    ns, kv, space = kovasznay_solver(P=6, dt=2e-3)
    xq, yq = space.coords()
    # Perturb the initial state; the flow should relax towards Kovasznay.
    ns.set_initial(
        lambda x, y, t: kv.u(x, y) + 0.05 * np.sin(np.pi * y),
        lambda x, y, t: kv.v(x, y),
    )
    ns.run(5)
    u, _ = ns.velocity()
    err0 = space.norm_l2(u - kv.u(xq, yq))
    ns.run(160)
    u, _ = ns.velocity()
    err1 = space.norm_l2(u - kv.u(xq, yq))
    # Perturbations wash out on the advective timescale (~1.5 time units);
    # after 0.32 units the error must have decayed measurably.
    assert err1 < 0.75 * err0


def test_divergence_small_after_projection():
    ns, _, _ = kovasznay_solver(P=6, dt=2e-3)
    ns.run(5)
    assert ns.divergence_norm() < 1e-2
    # and compared to the velocity scale
    assert ns.divergence_norm() < 0.01 * ns.max_velocity()


def test_taylor_vortex_energy_decay():
    ns, tv, space = taylor_solver(P=8, dt=2.5e-3)
    e0 = ns.kinetic_energy()
    ns.run(40)  # t = 0.1
    e1 = ns.kinetic_energy()
    expect = e0 * np.exp(-4.0 * tv.nu * 0.1)
    assert e1 == pytest.approx(expect, rel=2e-3)


def test_taylor_vortex_second_order_in_time():
    errs = {}
    for dt in (4e-3, 2e-3, 1e-3):
        ns, tv, space = taylor_solver(P=9, dt=dt)
        nsteps = round(0.08 / dt)
        ns.run(nsteps)
        xq, yq = space.coords()
        u, _ = ns.velocity()
        errs[dt] = space.norm_l2(u - tv.u(xq, yq, ns.t))
    r1 = errs[4e-3] / errs[2e-3]
    r2 = errs[2e-3] / errs[1e-3]
    # Second order: halving dt should shrink error ~4x (allow 2.5+).
    assert r1 > 2.5
    assert r2 > 2.2


def test_first_order_scheme_less_accurate():
    e = {}
    for order in (1, 2):
        ns, tv, space = taylor_solver(P=8, dt=4e-3, time_order=order)
        ns.run(25)
        xq, yq = space.coords()
        u, _ = ns.velocity()
        e[order] = space.norm_l2(u - tv.u(xq, yq, ns.t))
    assert e[2] < e[1] / 3


def test_stage_instrumentation():
    ns, _, _ = kovasznay_solver(P=5, dt=2e-3)
    ns.run(3)
    pct = ns.stage_percentages("cpu")
    assert set(pct) == set(STAGES)
    assert sum(pct.values()) == pytest.approx(100.0)
    flops = ns.stage_flops()
    # Solve stages do real work; transform stage does dgemv flops.
    assert flops["5:pressure-solve"] > 0
    assert flops["7:viscous-solve"] > 0
    assert flops["1:transform"] > 0
    b = ns.stage_bytes()
    assert all(v >= 0 for v in b.values())


def test_pressure_pin_path():
    # All-Dirichlet velocity boundaries with no pressure tag uses the pin.
    ns, tv, _ = taylor_solver(P=5, dt=2e-3)
    assert ns._p_pin is not None
    ns.run(2)
    assert np.isfinite(ns.p_hat).all()


def test_step_counter_and_time():
    ns, _, _ = kovasznay_solver(P=5, dt=1e-3)
    ns.run(4)
    assert ns.step_count == 4
    assert ns.t == pytest.approx(4e-3)
