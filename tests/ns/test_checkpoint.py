"""NekTar-F checkpoint/restart: bitwise continuation and crash recovery."""

import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.io.writers import NekTarFCheckpoint
from repro.machines.network import NetworkModel
from repro.mesh.generators import rectangle_quads
from repro.ns.nektar_f import NekTarF
from repro.parallel.faults import CrashSpec, FaultPlan, RankFailure
from repro.parallel.simmpi import VirtualCluster

from .test_nektar_f import Beltrami

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)
TAGS = ("left", "right", "top", "bottom")
MESH = rectangle_quads(1, 1, 0.0, 2 * np.pi, 0.0, 2 * np.pi)


def _make_solver(comm, bel, nz=4, dt=5e-3, order=2):
    space = FunctionSpace(MESH, 4)
    bcs = {t: (bel.u_amp, bel.v_amp, bel.w_amp) for t in TAGS}
    nf = NekTarF(
        comm, space, nz=nz, nu=bel.nu, dt=dt, velocity_bcs=bcs,
        time_order=order,
    )
    nf.set_initial(bel.u_amp, bel.v_amp, bel.w_amp)
    return nf


def _state(nf):
    return (
        nf.u_hat.copy(), nf.v_hat.copy(), nf.w_hat.copy(), nf.p_hat.copy(),
        nf.t, nf.step_count,
    )


def test_restart_is_bitwise_identical(tmp_path):
    """Restoring the step-3 checkpoint and continuing must reproduce an
    uninterrupted run exactly (coefficients AND scheme histories round-trip)."""
    bel = Beltrami(nu=0.1)

    def straight(comm):
        nf = _make_solver(comm, bel)
        nf.run(6, checkpoint_every=3, checkpoint_dir=str(tmp_path))
        return _state(nf)

    def restarted(comm):
        nf = _make_solver(comm, bel)
        step = nf.restore_checkpoint(str(tmp_path), step=3)
        assert step == 3 and nf.step_count == 3
        assert len(nf._hist_u) == nf.scheme.order
        nf.run(3)
        return _state(nf)

    ref = VirtualCluster(2, NET).run(straight)
    out = VirtualCluster(2, NET).run(restarted)
    for a, b in zip(ref, out):
        for xa, xb in zip(a, b):
            if isinstance(xa, np.ndarray):
                assert np.array_equal(xa, xb)  # bitwise, not allclose
            else:
                assert xa == xb


def test_latest_step_needs_complete_rank_set(tmp_path):
    bel = Beltrami(nu=0.1)

    def rank_fn(comm):
        nf = _make_solver(comm, bel)
        nf.run(4, checkpoint_every=2, checkpoint_dir=str(tmp_path))

    VirtualCluster(2, NET).run(rank_fn)
    assert NekTarFCheckpoint.latest_step(tmp_path, 2) == 4
    # A crash mid-write leaves an incomplete newest set: restart skips it.
    NekTarFCheckpoint.path(tmp_path, 4, 1).unlink()
    assert NekTarFCheckpoint.latest_step(tmp_path, 2) == 2
    NekTarFCheckpoint.path(tmp_path, 2, 0).unlink()
    assert NekTarFCheckpoint.latest_step(tmp_path, 2) is None
    assert NekTarFCheckpoint.latest_step(tmp_path / "nope", 2) is None


def test_restore_rejects_changed_layout(tmp_path):
    bel = Beltrami(nu=0.1)

    def write(comm):
        nf = _make_solver(comm, bel)
        nf.run(2, checkpoint_every=2, checkpoint_dir=str(tmp_path))

    VirtualCluster(2, NET).run(write)

    def reread(comm):
        nf = _make_solver(comm, bel)
        nf.restore_checkpoint(str(tmp_path), step=2)

    # 1-rank solver owns all modes; rank 0's 2-rank file holds half.
    with pytest.raises(ValueError, match="rank layout"):
        VirtualCluster(1, NET).run(reread)


def test_run_checkpoint_arg_validation():
    bel = Beltrami(nu=0.1)

    def rank_fn(comm):
        nf = _make_solver(comm, bel)
        with pytest.raises(ValueError, match="together"):
            nf.run(1, checkpoint_every=2)
        with pytest.raises(ValueError, match=">= 1"):
            nf.run(1, checkpoint_every=0, checkpoint_dir="/tmp/x")

    VirtualCluster(1, NET).run(rank_fn)


def test_crash_restart_recovers_fault_free_fields(tmp_path):
    """The acceptance scenario: rank 1 dies at step 4; the run is
    restarted from the last complete checkpoint and must land on the
    fault-free fields (bitwise here — faults perturb clocks, not data)."""
    bel = Beltrami(nu=0.1)
    nsteps = 6

    def reference(comm):
        nf = _make_solver(comm, bel)
        nf.run(nsteps)
        return _state(nf)

    ref = VirtualCluster(2, NET).run(reference)

    def faulty(comm):
        nf = _make_solver(comm, bel)
        try:
            nf.run(nsteps, checkpoint_every=2, checkpoint_dir=str(tmp_path))
            return "finished"
        except RankFailure as e:
            return f"lost rank {e.rank}"

    plan = FaultPlan(crashes=(CrashSpec(rank=1, at_step=4),))
    res = VirtualCluster(2, NET, faults=plan).run(faulty)
    assert res[0] == "lost rank 1"
    assert res[1] is None  # the crashed rank produced no result
    last = NekTarFCheckpoint.latest_step(tmp_path, 2)
    assert last == 4  # checkpoints at steps 2 and 4 both completed

    def restarted(comm):
        nf = _make_solver(comm, bel)
        nf.restore_checkpoint(str(tmp_path))
        nf.run(nsteps - nf.step_count)
        return _state(nf)

    out = VirtualCluster(2, NET).run(restarted)
    for a, b in zip(ref, out):
        for xa, xb in zip(a, b):
            if isinstance(xa, np.ndarray):
                assert np.array_equal(xa, xb)
            else:
                assert xa == xb
