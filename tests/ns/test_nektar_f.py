import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.machines.catalog import CPUS
from repro.machines.network import NetworkModel
from repro.mesh.generators import rectangle_quads
from repro.ns.exact import Kovasznay
from repro.ns.nektar2d import NavierStokes2D
from repro.ns.nektar_f import NekTarF
from repro.ns.stages import STAGES
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


def test_zinvariant_matches_serial_2d():
    """A z-invariant flow in NekTar-F must reproduce the serial 2-D
    solver step for step (w stays identically zero)."""
    kv = Kovasznay(40.0)
    mesh = rectangle_quads(2, 2, -0.5, 1.0, -0.5, 0.5)
    P, dt, nsteps = 6, 2e-3, 4

    # Serial reference.
    space2d = FunctionSpace(mesh, P)
    bcs2d = {
        t: (lambda x, y, tt: float(kv.u(x, y)), lambda x, y, tt: float(kv.v(x, y)))
        for t in ("left", "top", "bottom")
    }
    ns2d = NavierStokes2D(space2d, kv.nu, dt, bcs2d, pressure_dirichlet=("right",))
    ns2d.set_initial(lambda x, y, t: kv.u(x, y), lambda x, y, t: kv.v(x, y))
    ns2d.run(nsteps)

    def amp(fn):
        return lambda m, x, y, t: complex(fn(x, y)) if m == 0 else 0.0

    def rank_fn(comm):
        space = FunctionSpace(mesh, P)
        bcs = {
            t: (amp(kv.u), amp(kv.v), lambda m, x, y, tt: 0.0)
            for t in ("left", "top", "bottom")
        }
        nf = NekTarF(
            comm, space, nz=4, nu=kv.nu, dt=dt, velocity_bcs=bcs,
            pressure_dirichlet=("right",),
        )
        nf.set_initial(amp(kv.u), amp(kv.v), lambda m, x, y, t: 0.0)
        nf.run(nsteps)
        u, v, w = nf.velocity_physical()
        return u, v, w, nf.u_hat

    res = VirtualCluster(2, NET).run(rank_fn)
    u3, v3, w3, _ = res[0]
    u2 = space2d.backward(ns2d.u_hat)
    v2 = space2d.backward(ns2d.v_hat)
    for iz in range(4):
        np.testing.assert_allclose(u3[:, :, iz], u2, atol=1e-9)
        np.testing.assert_allclose(v3[:, :, iz], v2, atol=1e-9)
    np.testing.assert_allclose(w3, 0.0, atol=1e-9)


class Beltrami:
    """ABC-type Beltrami flow: curl u = u, exact NS solution decaying
    as exp(-nu t) with p = -|u|^2/2."""

    def __init__(self, nu, a=0.5, b=0.4, c=0.3):
        self.nu, self.a, self.b, self.c = nu, a, b, c

    def g(self, t):
        return np.exp(-self.nu * t)

    def u(self, x, y, z, t):
        return (self.a * np.sin(z) + self.c * np.cos(y)) * self.g(t)

    def v(self, x, y, z, t):
        return (self.b * np.sin(x) + self.a * np.cos(z)) * self.g(t)

    def w(self, x, y, z, t):
        return (self.c * np.sin(y) + self.b * np.cos(x)) * self.g(t)

    # Fourier amplitudes in z (two-sided convention: f = a0 + 2 Re a1 e^{iz}).
    def u_amp(self, m, x, y, t):
        if m == 0:
            return complex(self.c * np.cos(y) * self.g(t))
        if m == 1:
            return complex(0.0, -0.5 * self.a * self.g(t))
        return 0.0

    def v_amp(self, m, x, y, t):
        if m == 0:
            return complex(self.b * np.sin(x) * self.g(t))
        if m == 1:
            return complex(0.5 * self.a * self.g(t), 0.0)
        return 0.0

    def w_amp(self, m, x, y, t):
        if m == 0:
            return complex((self.c * np.sin(y) + self.b * np.cos(x)) * self.g(t))
        return 0.0


def test_beltrami_exact_solution():
    bel = Beltrami(nu=0.1)
    mesh = rectangle_quads(2, 2, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    P, nz, dt, nsteps = 7, 4, 5e-3, 10
    tags = ("left", "right", "top", "bottom")

    def rank_fn(comm):
        space = FunctionSpace(mesh, P)
        bcs = {t: (bel.u_amp, bel.v_amp, bel.w_amp) for t in tags}
        nf = NekTarF(comm, space, nz=nz, nu=bel.nu, dt=dt, velocity_bcs=bcs)
        nf.set_initial(bel.u_amp, bel.v_amp, bel.w_amp)
        nf.run(nsteps)
        u, v, w = nf.velocity_physical()
        return u, v, w, nf.t, space

    res = VirtualCluster(2, NET).run(rank_fn)
    u, v, w, t_end, space = res[0]
    z = 2 * np.pi * np.arange(nz) / nz
    xq, yq = space.coords()
    err = 0.0
    for iz in range(nz):
        err = max(err, np.abs(u[:, :, iz] - bel.u(xq, yq, z[iz], t_end)).max())
        err = max(err, np.abs(v[:, :, iz] - bel.v(xq, yq, z[iz], t_end)).max())
        err = max(err, np.abs(w[:, :, iz] - bel.w(xq, yq, z[iz], t_end)).max())
    assert err < 5e-4


def test_beltrami_energy_decay():
    bel = Beltrami(nu=0.2)
    mesh = rectangle_quads(2, 2, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    tags = ("left", "right", "top", "bottom")

    def rank_fn(comm):
        space = FunctionSpace(mesh, 6)
        bcs = {t: (bel.u_amp, bel.v_amp, bel.w_amp) for t in tags}
        nf = NekTarF(comm, space, nz=4, nu=bel.nu, dt=5e-3, velocity_bcs=bcs)
        nf.set_initial(bel.u_amp, bel.v_amp, bel.w_amp)
        e0 = nf.kinetic_energy()
        nf.run(10)
        return e0, nf.kinetic_energy(), nf.t

    res = VirtualCluster(2, NET).run(rank_fn)
    e0, e1, t = res[0]
    assert e1 == pytest.approx(e0 * np.exp(-2 * bel.nu * t), rel=5e-3)


def test_mode_distribution_and_shapes():
    mesh = rectangle_quads(1, 1)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 3)
        nf = NekTarF(comm, space, nz=8, nu=0.1, dt=1e-2, velocity_bcs={})
        return nf.my_modes, nf.u_hat.shape

    res = VirtualCluster(4, NET).run(rank_fn)
    assert [r[0] for r in res] == [[0], [1], [2], [3]]
    for _, shape in res:
        assert shape[0] == 1


def test_invalid_parameters():
    mesh = rectangle_quads(1, 1)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 3)
        NekTarF(comm, space, nz=8, nu=-1.0, dt=1e-2, velocity_bcs={})

    with pytest.raises(ValueError):
        VirtualCluster(1, NET).run(rank_fn)


def test_virtual_stage_timings_with_charging():
    bel = Beltrami(nu=0.1)
    mesh = rectangle_quads(1, 1, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    tags = ("left", "right", "top", "bottom")

    def rank_fn(comm):
        space = FunctionSpace(mesh, 4)
        bcs = {t: (bel.u_amp, bel.v_amp, bel.w_amp) for t in tags}
        nf = NekTarF(
            comm, space, nz=4, nu=bel.nu, dt=5e-3, velocity_bcs=bcs,
            charge_compute=True,
        )
        nf.set_initial(bel.u_amp, bel.v_amp, bel.w_amp)
        nf.run(2)
        return nf.virtual, comm.wall, comm.cpu_time

    cl = VirtualCluster(2, NET, cpu=CPUS["pentium-ii-450"])
    res = cl.run(rank_fn)
    virt, wall, cpu = res[0]
    assert wall > 0 and cpu > 0
    assert wall >= cpu  # wall includes communication waits
    pct = virt.percentages("wall")
    assert set(pct) == set(STAGES)
    # The alltoall-heavy stage 2 must carry communication cost.
    assert virt.records["2:nonlinear"].wall > virt.records["2:nonlinear"].cpu
