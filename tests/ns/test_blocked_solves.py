"""Golden regression: the blocked multi-RHS solve engine is invisible.

NekTar-F with ``blocked_solves=True`` must produce the same trajectory
as the per-mode reference path, charge the same per-step OpCounter
totals (total and per label), and leave the virtual-machine per-stage
cost model — the source of the Table 2 times and the Figure 13-14
stage-percentage breakdowns — exactly unchanged.
"""

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.linalg.counters import OpCounter
from repro.machines.catalog import CPUS
from repro.machines.network import NetworkModel
from repro.mesh.generators import bluff_body_mesh
from repro.ns.nektar_f import NekTarF
from repro.ns.stages import STAGES
from repro.parallel.simmpi import VirtualCluster

from .test_nektar_f import Beltrami

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


def _solver_pair(comm, mesh, order, nz, bcs, **kw):
    space = FunctionSpace(mesh, order, batched=True)
    return {
        blocked: NekTarF(
            comm, space, nz=nz, nu=0.1, dt=5e-3, velocity_bcs=bcs,
            blocked_solves=blocked, **kw,
        )
        for blocked in (True, False)
    }


def test_blocked_step_matches_reference_with_identical_charges():
    """Per-step fields and charges match the per-mode path, including
    the order-1 startup step and the gamma0 switch at second order."""
    bel = Beltrami(nu=0.1)
    mesh = bluff_body_mesh(m=3, nr=1)
    tags = ("inflow", "outflow", "side", "wall")

    def rank_fn(comm):
        bcs = {t: (bel.u_amp, bel.v_amp, bel.w_amp) for t in tags}
        pair = _solver_pair(comm, mesh, 5, 8, bcs, time_order=2)
        for nf in pair.values():
            nf.set_initial(bel.u_amp, bel.v_amp, bel.w_amp)
        out = []
        for _ in range(3):
            charges = {}
            for blocked, nf in pair.items():
                with OpCounter() as c:
                    nf.step()
                charges[blocked] = (
                    c.flops,
                    c.bytes,
                    {k: v[:2] for k, v in c.by_label.items()},
                )
            out.append(charges)
        fields = {
            b: (nf.u_hat, nf.v_hat, nf.w_hat, nf.p_hat)
            for b, nf in pair.items()
        }
        return out, fields

    per_step, fields = VirtualCluster(1, NET).run(rank_fn)[0]
    for charges in per_step:
        assert charges[True] == charges[False]
    for fb, fr in zip(fields[True], fields[False]):
        scale = float(np.max(np.abs(fr))) or 1.0
        np.testing.assert_allclose(
            fb, fr, rtol=0.0, atol=1e-11 * max(1.0, scale)
        )


def test_blocked_solves_leave_stage_cost_model_unchanged():
    """Virtual per-stage CPU/wall times (Figure 13-14's breakdown, and
    through the pricing layer Table 2's per-step times) are derived from
    the charged ops, so they must be bit-identical across paths."""
    bel = Beltrami(nu=0.1)
    mesh = bluff_body_mesh(m=3, nr=1)
    tags = ("inflow", "outflow", "side", "wall")

    def rank_fn(comm):
        bcs = {t: (bel.u_amp, bel.v_amp, bel.w_amp) for t in tags}
        pair = _solver_pair(comm, mesh, 5, 8, bcs, charge_compute=True)
        for nf in pair.values():
            nf.set_initial(bel.u_amp, bel.v_amp, bel.w_amp)
            nf.run(2)
        return {
            b: (
                {s: (r.cpu, r.wall) for s, r in nf.virtual.records.items()},
                nf.stage_percentages("cpu"),
            )
            for b, nf in pair.items()
        }

    res = VirtualCluster(1, NET, cpu=CPUS["pentium-ii-450"]).run(rank_fn)[0]
    records_b, pct_b = res[True]
    records_r, pct_r = res[False]
    assert set(records_b) == set(STAGES)
    # The blocked path makes fewer (bigger) charge calls, so the priced
    # seconds accumulate in a different order: equal to round-off only.
    for s in STAGES:
        np.testing.assert_allclose(records_b[s], records_r[s], rtol=1e-12)
        np.testing.assert_allclose(pct_b[s], pct_r[s], rtol=1e-9)
