import pytest

from repro.ns.splitting import stiffly_stable


def test_table_order2_matches_paper():
    s = stiffly_stable(2)
    assert s.gamma0 == pytest.approx(1.5)
    assert s.alpha == (2.0, -0.5)
    assert s.beta == (2.0, -1.0)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_consistency_conditions(order):
    s = stiffly_stable(order)
    assert sum(s.alpha) == pytest.approx(s.gamma0)
    assert sum(s.beta) == pytest.approx(1.0)
    assert len(s.alpha) == len(s.beta) == order


@pytest.mark.parametrize("order", [1, 2, 3])
def test_bdf_order_conditions(order):
    # Exactness for polynomials: gamma0 * t^k - sum alpha_q (t - q dt)^k
    # must equal k * dt * t^{k-1} * sum(beta...) consistency up to `order`.
    # Equivalent standard check: sum_q alpha_q q^k = gamma0*0^k - k*(-1)^k...
    # Use the direct form: the BDF derivative of t^k at t=0 with nodes
    # -1..-order must equal k * 0^{k-1}.
    s = stiffly_stable(order)
    for k in range(order + 1):
        # d/dt t^k at t = 0 using u^{n+1} at 0 and u^{n-q} at -(q+1):
        lhs = s.gamma0 * (0.0**k if k else 1.0) - sum(
            a * (-(q + 1.0)) ** k for q, a in enumerate(s.alpha)
        )
        expect = 1.0 if k == 1 else 0.0
        assert lhs == pytest.approx(expect, abs=1e-12)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_extrapolation_order_conditions(order):
    # beta extrapolates values at -(q+1) to 0 exactly for degree < order.
    s = stiffly_stable(order)
    for k in range(order):
        val = sum(b * (-(q + 1.0)) ** k for q, b in enumerate(s.beta))
        expect = 0.0**k if k else 1.0
        assert val == pytest.approx(expect, abs=1e-12)


def test_invalid_order():
    with pytest.raises(ValueError):
        stiffly_stable(0)
    with pytest.raises(ValueError):
        stiffly_stable(4)
