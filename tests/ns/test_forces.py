import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import bluff_body_mesh, rectangle_quads
from repro.ns.forces import ForceRecorder, body_forces


def make_space(order=4):
    return FunctionSpace(rectangle_quads(2, 2, 0.0, 2.0, 0.0, 1.0), order)


def project(space, fn):
    xq, yq = space.coords()
    return space.forward(fn(xq, yq))


def test_uniform_pressure_on_straight_edge():
    # p = p0, u = v = 0: traction on the bottom wall uses the
    # wall-outward normal (0, 1), so F = (0, -2 p0): pressure pushes the
    # wall downward.
    space = make_space()
    p0 = 3.0
    zeros = np.zeros(space.ndof)
    p_hat = project(space, lambda x, y: p0 * np.ones_like(x))
    f = body_forces(space, zeros, zeros, p_hat, nu=0.1, tag="bottom")
    assert f.drag == pytest.approx(0.0, abs=1e-10)
    assert f.lift == pytest.approx(-2.0 * p0, rel=1e-10)
    assert f.viscous_drag == pytest.approx(0.0, abs=1e-10)


def test_couette_shear_traction():
    # u = y, v = 0, p = 0: the faster fluid above drags the bottom wall
    # forward: t_x = nu du/dy (wall-outward normal (0, 1)); over length
    # 2: drag = +2 nu.  The top wall is dragged backward by the slower
    # fluid below it.
    space = make_space()
    nu = 0.25
    u_hat = project(space, lambda x, y: y)
    zeros = np.zeros(space.ndof)
    f = body_forces(space, u_hat, zeros, zeros, nu, tag="bottom")
    assert f.drag == pytest.approx(2.0 * nu, rel=1e-9)
    assert f.lift == pytest.approx(0.0, abs=1e-9)
    f_top = body_forces(space, u_hat, zeros, zeros, nu, tag="top")
    assert f_top.drag == pytest.approx(-2.0 * nu, rel=1e-9)


def test_uniform_pressure_closed_body_zero_force():
    # A constant pressure integrates to zero force over a closed wall.
    mesh = bluff_body_mesh(m=3, nr=1)
    space = FunctionSpace(mesh, 3)
    zeros = np.zeros(space.ndof)
    p_hat = project(space, lambda x, y: 5.0 * np.ones_like(x))
    f = body_forces(space, zeros, zeros, p_hat, nu=0.1, tag="wall")
    assert f.drag == pytest.approx(0.0, abs=1e-9)
    assert f.lift == pytest.approx(0.0, abs=1e-9)


def test_linear_pressure_closed_body_buoyancy():
    # p = y over a closed body: F = -oint p n ds = -(area) * grad p
    # direction... by the divergence theorem, oint p n ds = area * (0,1).
    mesh = bluff_body_mesh(m=3, nr=1)
    space = FunctionSpace(mesh, 3)
    zeros = np.zeros(space.ndof)
    p_hat = project(space, lambda x, y: y)
    f = body_forces(space, zeros, zeros, p_hat, nu=0.1, tag="wall")
    # Wall normals point INTO the body (outward from the fluid), so the
    # enclosed "area" carries a sign: |lift| = polygon area of the body.
    # The straight-sided wall is a 12-gon inscribed in the r = 0.5
    # circle: its exact area is 6 r^2 sin(pi/6) = 0.75 (vs pi/4 = 0.785).
    body_area = 6.0 * 0.25 * np.sin(np.pi / 6.0)
    assert abs(f.lift) == pytest.approx(body_area, rel=1e-9)
    assert f.drag == pytest.approx(0.0, abs=1e-9)


def test_force_recorder_on_real_run():
    from repro.ns.nektar2d import NavierStokes2D

    mesh = bluff_body_mesh(m=3, nr=1)
    space = FunctionSpace(mesh, 3)
    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    ns = NavierStokes2D(
        space, nu=0.02, dt=2e-2,
        velocity_bcs={"inflow": (one, zero), "wall": (zero, zero)},
        pressure_dirichlet=("outflow",),
    )
    ns.set_initial(one, zero)
    rec = ForceRecorder(ns, "wall")
    for _ in range(6):
        ns.step()
        rec.record()
    t, drag = rec.drag_series()
    assert t.shape == drag.shape == (6,)
    # Flow pushes the body downstream: positive drag once developed.
    assert drag[-1] > 0
    # Not enough history for a Strouhal estimate yet.
    assert rec.strouhal() is None


def test_strouhal_from_synthetic_signal():
    class Dummy:
        pass

    rec = ForceRecorder.__new__(ForceRecorder)
    rec.times, rec.history = [], []
    period = 0.5
    for i, t in enumerate(np.linspace(0, 3, 300)):
        rec.times.append(t)
        f = type("F", (), {})()
        f.lift = np.sin(2 * np.pi * t / period)
        f.drag = 1.0
        rec.history.append(f)
    st = rec.strouhal(diameter=1.0, velocity=1.0)
    assert st == pytest.approx(1.0 / period, rel=0.05)
