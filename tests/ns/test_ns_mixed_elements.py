"""The NS solvers on triangle and mixed tri/quad meshes (all other NS
tests run on quads; the paper's meshes are hybrid)."""

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_tris
from repro.mesh.mesh2d import Mesh2D
from repro.ns.exact import Kovasznay, TaylorVortex
from repro.ns.nektar2d import NavierStokes2D


def test_kovasznay_on_triangles():
    kv = Kovasznay(40.0)
    mesh = rectangle_tris(2, 2, -0.5, 1.0, -0.5, 0.5)
    space = FunctionSpace(mesh, 7)
    bcs = {
        t: (
            lambda x, y, tt: float(kv.u(x, y)),
            lambda x, y, tt: float(kv.v(x, y)),
        )
        for t in ("left", "top", "bottom")
    }
    ns = NavierStokes2D(space, kv.nu, 2e-3, bcs, pressure_dirichlet=("right",))
    ns.set_initial(lambda x, y, t: kv.u(x, y), lambda x, y, t: kv.v(x, y))
    ns.run(10)
    xq, yq = space.coords()
    u, v = ns.velocity()
    assert space.norm_l2(u - kv.u(xq, yq)) < 1e-3
    assert space.norm_l2(v - kv.v(xq, yq)) < 1e-3


def mixed_channel():
    """[0,2]x[0,1] split into one quad and two triangles."""
    verts = np.array(
        [[0, 0], [1, 0], [1, 1], [0, 1], [2, 0], [2, 1]], dtype=float
    )
    elems = [(0, 1, 2, 3), (1, 4, 2), (4, 5, 2)]
    mesh = Mesh2D(verts, elems)
    tags = {"left": [], "right": [], "top": [], "bottom": []}
    tol = 1e-12
    for ei, le in mesh.boundary_sides():
        a, b = mesh.elements[ei].edge_vertices(le)
        mid = 0.5 * (mesh.vertices[a] + mesh.vertices[b])
        if abs(mid[1]) < tol:
            tags["bottom"].append((ei, le))
        elif abs(mid[1] - 1) < tol:
            tags["top"].append((ei, le))
        elif abs(mid[0]) < tol:
            tags["left"].append((ei, le))
        else:
            tags["right"].append((ei, le))
    return Mesh2D(verts, elems, tags)


def test_taylor_vortex_on_mixed_mesh():
    tv = TaylorVortex(nu=0.05, k=np.pi)  # one period across [0, 2]x[0, 1]
    mesh = mixed_channel()
    space = FunctionSpace(mesh, 6)
    bcs = {
        t: (
            lambda x, y, tt: float(tv.u(x, y, tt)),
            lambda x, y, tt: float(tv.v(x, y, tt)),
        )
        for t in ("left", "right", "top", "bottom")
    }
    ns = NavierStokes2D(space, 0.05, 2e-3, bcs)
    ns.set_initial(
        lambda x, y, t: tv.u(x, y, 0.0), lambda x, y, t: tv.v(x, y, 0.0)
    )
    ns.run(15)
    xq, yq = space.coords()
    u, _ = ns.velocity()
    err = space.norm_l2(u - tv.u(xq, yq, ns.t))
    assert err < 5e-3
    assert ns.divergence_norm() < 5e-2


def test_mixed_mesh_stage_instrumentation():
    mesh = mixed_channel()
    space = FunctionSpace(mesh, 4)
    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    ns = NavierStokes2D(
        space, 0.05, 5e-3,
        velocity_bcs={"left": (one, zero), "top": (zero, zero), "bottom": (zero, zero)},
        pressure_dirichlet=("right",),
    )
    ns.set_initial(one, zero)
    ns.run(3)
    flops = ns.stage_flops()
    assert all(v > 0 for v in flops.values())
