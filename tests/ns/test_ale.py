import numpy as np
import pytest

from repro.mesh.generators import rectangle_quads
from repro.ns.ale import ALENavierStokes2D
from repro.ns.exact import TaylorVortex
from repro.ns.stages import STAGES, group_ale


def wobble(x0, y0, t, amp=0.05):
    """Interior-only mesh wobble: boundary of [0, pi]^2 stays fixed."""
    s = np.sin(x0) * np.sin(y0)  # vanishes on the boundary
    return (x0 + amp * s * np.sin(3 * t), y0 + amp * s * np.cos(2 * t))


def make_solver(motion=None, ale_convection=True, P=5, dt=5e-3, bcs_exact=None):
    mesh = rectangle_quads(2, 2, 0.0, np.pi, 0.0, np.pi)
    tags = ("left", "right", "top", "bottom")
    if bcs_exact is None:
        one = lambda x, y, t: 1.0  # noqa: E731
        zero = lambda x, y, t: 0.0  # noqa: E731
        bcs = {t: (one, zero) for t in tags}
    else:
        bcs = {t: bcs_exact for t in tags}
    return ALENavierStokes2D(
        mesh, P, nu=0.05, dt=dt, velocity_bcs=bcs,
        motion=motion, ale_convection=ale_convection,
    )


def test_invalid_parameters():
    mesh = rectangle_quads(1, 1)
    with pytest.raises(ValueError):
        ALENavierStokes2D(mesh, 3, nu=-1.0, dt=0.01, velocity_bcs={})
    with pytest.raises(ValueError):
        ALENavierStokes2D(mesh, 3, nu=0.1, dt=0.01, velocity_bcs={}, motion="solve")


def test_free_stream_preservation_on_moving_mesh():
    # Uniform flow must stay exactly uniform while the mesh wobbles.
    ns = make_solver(motion=wobble)
    ns.set_initial(lambda x, y, t: 1.0, lambda x, y, t: 0.0)
    ns.run(6)
    u, v = ns.velocity()
    np.testing.assert_allclose(u, 1.0, atol=1e-6)
    np.testing.assert_allclose(v, 0.0, atol=1e-6)
    # The mesh really moved.
    assert not np.allclose(ns.mesh.vertices, ns.vertices0)


def test_static_ale_matches_fixed_solver():
    # With no motion, the ALE solver is an ordinary (CG-based) NS solver:
    # Taylor vortex decay must hold.
    tv = TaylorVortex(nu=0.05)
    bcs = (
        lambda x, y, t: float(tv.u(x, y, t)),
        lambda x, y, t: float(tv.v(x, y, t)),
    )
    ns = make_solver(motion=None, P=7, dt=2.5e-3, bcs_exact=bcs)
    ns.set_initial(lambda x, y, t: tv.u(x, y, 0.0), lambda x, y, t: tv.v(x, y, 0.0))
    e0 = ns.kinetic_energy()
    ns.run(20)
    expect = e0 * np.exp(-4 * 0.05 * ns.t)
    assert ns.kinetic_energy() == pytest.approx(expect, rel=5e-3)


def test_ale_convection_correction_matters():
    # On a wobbling mesh, solving the Taylor vortex with the ALE
    # convective correction must beat the same run without it.
    tv = TaylorVortex(nu=0.05)
    bcs = (
        lambda x, y, t: float(tv.u(x, y, t)),
        lambda x, y, t: float(tv.v(x, y, t)),
    )
    errs = {}
    for ale in (True, False):
        ns = make_solver(motion=lambda x, y, t: wobble(x, y, t, amp=0.04),
                         ale_convection=ale, P=6, dt=5e-3, bcs_exact=bcs)
        ns.set_initial(
            lambda x, y, t: tv.u(x, y, 0.0), lambda x, y, t: tv.v(x, y, 0.0)
        )
        ns.run(12)
        xq, yq = ns.space.coords()
        u, _ = ns.velocity()
        errs[ale] = ns.space.norm_l2(u - tv.u(xq, yq, ns.t))
    assert errs[True] < 0.5 * errs[False]


def test_mesh_velocity_solve_mode():
    # Body motion drives a Laplace solve for the mesh velocity; mesh
    # vertices on the wall must follow the body, outer boundary stays.
    from repro.mesh.generators import bluff_body_mesh

    mesh = bluff_body_mesh(m=3, nr=1)
    tags = {"inflow": (lambda x, y, t: 1.0, lambda x, y, t: 0.0),
            "wall": (lambda x, y, t: 0.0, lambda x, y, t: 0.1)}
    ns = ALENavierStokes2D(
        mesh, 3, nu=0.05, dt=1e-2, velocity_bcs=tags,
        pressure_dirichlet=("outflow",),
        motion="solve",
        body_velocity=(lambda x, y, t: 0.0, lambda x, y, t: 0.1),
        outer_tags=("inflow", "outflow", "side"),
    )
    ns.set_initial(lambda x, y, t: 1.0, lambda x, y, t: 0.0)
    wall_vids = set()
    for ei, le in mesh.boundary_sides("wall"):
        a, b = mesh.elements[ei].edge_vertices(le)
        wall_vids |= {a, b}
    outer_vids = set()
    for tag in ("inflow", "outflow", "side"):
        for ei, le in mesh.boundary_sides(tag):
            a, b = mesh.elements[ei].edge_vertices(le)
            outer_vids |= {a, b}
    y_before = mesh.vertices[sorted(wall_vids)][:, 1].copy()
    outer_before = mesh.vertices[sorted(outer_vids)].copy()
    ns.run(2)
    y_after = mesh.vertices[sorted(wall_vids)][:, 1]
    np.testing.assert_allclose(y_after - y_before, 0.1 * ns.t, atol=1e-6)
    np.testing.assert_allclose(
        mesh.vertices[sorted(outer_vids)], outer_before, atol=1e-9
    )
    assert ns.cg_iterations["mesh"] > 0


def test_stage_instrumentation_and_ale_groups():
    ns = make_solver(motion=wobble, P=4)
    ns.set_initial(lambda x, y, t: 1.0, lambda x, y, t: 0.0)
    ns.run(2)
    pct = ns.stage_percentages("cpu")
    assert set(pct) == set(STAGES)
    groups = group_ale(pct)
    assert set(groups) == {"a", "b", "c"}
    assert sum(groups.values()) == pytest.approx(100.0)
    # All three groups did work.  (The paper's b + c ~ 90% share is a
    # property of the production problem size; the cost-model driver in
    # repro.apps reproduces it — host timings of this toy run do not.)
    assert all(g > 0 for g in groups.values())


def test_cg_iteration_accounting():
    ns = make_solver(motion=None, P=4)
    ns.set_initial(lambda x, y, t: 1.0, lambda x, y, t: 0.0)
    ns.run(2)
    assert ns.cg_iterations["viscous"] > 0
    assert ns.cg_iterations["mesh"] == 0  # no motion solve requested
