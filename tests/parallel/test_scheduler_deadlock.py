"""SchedulerDeadlock: typed stall reports instead of silent hangs.

The communication verifier normally diagnoses application-level
deadlocks (``CommVerificationError``) before the scheduler ever sees a
stall.  These tests disable that layer to plant a *scheduler-level*
stall — every rank blocked, no wait satisfiable — and assert that both
engines refuse to hang: they raise :class:`SchedulerDeadlock` carrying
the per-rank blocked-state dump and the ``REPRO014`` runtime code.
"""

import pytest

from repro.analysis.vocab import RUNTIME_CODES
from repro.machines.network import NetworkModel
from repro.parallel.simmpi import SchedulerDeadlock, VirtualCluster

NET = NetworkModel("deadlock-net", latency_us=10, bandwidth=100e6)


def _head_to_head(comm):
    # Both ranks receive first and would send second: unsatisfiable.
    comm.recv((comm.rank + 1) % comm.size)
    comm.send((comm.rank + 1) % comm.size, 1.0)


def _plant(engine):
    """A cluster whose verifier is blinded, so only the scheduler can
    notice that nothing is runnable."""
    cluster = VirtualCluster(2, NET, engine=engine)
    cluster._check_deadlock = lambda: False  # type: ignore[method-assign]
    if engine == "threads":
        # Shrink the safety-net poll so the strike counter trips fast.
        cluster.wait_safety_net_s = 0.05
    return cluster


@pytest.mark.parametrize("engine", ["event", "threads"])
def test_planted_stall_raises_typed_deadlock(engine):
    cluster = _plant(engine)
    with pytest.raises(SchedulerDeadlock) as exc_info:
        cluster.run(_head_to_head)
    err = exc_info.value
    # The dump names every stuck rank and what it was waiting in.
    assert sorted(err.blocked) == [0, 1]
    for rank, desc in err.blocked.items():
        assert "recv" in desc, f"rank {rank} blocked in {desc!r}"
        assert f"rank {rank}: blocked in {desc}" in str(err)
    assert RUNTIME_CODES["scheduler_stall"] in str(err)
    assert "REPRO014" in str(err)


def test_event_engine_reports_stall_without_waiting():
    """The event engine detects the stall the moment its ready deque
    drains — no timeout, no safety-net poll."""
    import time

    cluster = _plant("event")
    t0 = time.perf_counter()
    with pytest.raises(SchedulerDeadlock):
        cluster.run(_head_to_head)
    # Detection is immediate; anything near the thread engine's poll
    # interval would mean the event engine fell back to timeouts.
    assert time.perf_counter() - t0 < 1.0


def test_undisturbed_verifier_still_wins():
    """With the verifier active, an application deadlock surfaces as
    CommVerificationError on both engines — SchedulerDeadlock is the
    backstop, not the primary diagnosis."""
    from repro.parallel.simmpi import CommVerificationError

    for engine in ("event", "threads"):
        cluster = VirtualCluster(2, NET, engine=engine)
        with pytest.raises(CommVerificationError, match="deadlock"):
            cluster.run(_head_to_head)


def test_scheduler_deadlock_is_runtime_error():
    err = SchedulerDeadlock({3: "recv(src=1, tag=0)"}, detail="unit")
    assert isinstance(err, RuntimeError)
    assert err.blocked == {3: "recv(src=1, tag=0)"}
    assert "unit" in str(err)
    assert "rank 3: blocked in recv(src=1, tag=0)" in str(err)
