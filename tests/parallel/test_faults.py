"""Fault injection: plan semantics, pricing, crashes, timeouts, and the
verifier's behaviour under fault storms."""

import numpy as np
import pytest

from repro.machines.catalog import NETWORKS
from repro.machines.network import NetworkModel
from repro.obs import MetricsRegistry, use_registry
from repro.parallel.faults import CrashSpec, FaultPlan, RankFailure, RecvTimeout
from repro.parallel.simmpi import (
    _TRACE_LEN,
    CommVerificationError,
    VirtualCluster,
)

ETH = NETWORKS["RoadRunner, eth-internode"]
MYR = NETWORKS["RoadRunner, myr-internode"]
FAST = NetworkModel("t", latency_us=5, bandwidth=1e9)


# -- plan validation and determinism ------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError, match="loss_rate"):
        FaultPlan(loss_rate=1.0)
    with pytest.raises(ValueError, match="loss_rate"):
        FaultPlan(loss_rate=-0.1)
    with pytest.raises(ValueError, match="retransmit"):
        FaultPlan(retransmit_timeout=-1.0)
    with pytest.raises(ValueError, match=">= 1"):
        FaultPlan(degraded_links={(0, 1): 0.5})
    with pytest.raises(ValueError, match=">= 1"):
        FaultPlan(stragglers={0: 0.9})
    with pytest.raises(ValueError, match="one CrashSpec per rank"):
        FaultPlan(
            crashes=(CrashSpec(0, at_time=1.0), CrashSpec(0, at_step=3))
        )
    with pytest.raises(ValueError, match="exactly one"):
        CrashSpec(0)
    with pytest.raises(ValueError, match="exactly one"):
        CrashSpec(0, at_time=1.0, at_step=2)
    with pytest.raises(ValueError, match="bad rank"):
        CrashSpec(-1, at_time=1.0)


def test_empty_plan_is_normalised_away():
    assert FaultPlan().is_empty
    assert not FaultPlan(loss_rate=0.1).is_empty
    assert not FaultPlan(stragglers={1: 2.0}).is_empty
    cl = VirtualCluster(2, FAST, faults=FaultPlan())
    assert cl._plan is None  # every fault branch is skipped outright
    assert VirtualCluster(2, FAST, faults=None)._plan is None
    assert VirtualCluster(2, FAST, faults=FaultPlan(loss_rate=0.1))._plan is not None


def test_retransmit_draws_are_deterministic_and_seeded():
    plan = FaultPlan(seed=42, loss_rate=0.3)
    draws = [plan.retransmits(0, 1, 7, i) for i in range(200)]
    assert draws == [plan.retransmits(0, 1, 7, i) for i in range(200)]
    assert any(draws)  # 30% loss must hit somewhere in 200 messages
    assert draws != [
        FaultPlan(seed=43, loss_rate=0.3).retransmits(0, 1, 7, i)
        for i in range(200)
    ]
    # Distinct (src, dst, tag) streams are independent.
    assert draws != [plan.retransmits(1, 0, 7, i) for i in range(200)]
    assert max(draws) <= plan.max_retransmits


def test_retransmit_delay_is_exponential_backoff():
    plan = FaultPlan(loss_rate=0.1, retransmit_timeout=0.2)
    assert plan.retransmit_delay(0) == 0.0
    assert plan.retransmit_delay(1) == pytest.approx(0.2)
    assert plan.retransmit_delay(3) == pytest.approx(0.2 * 7)  # 1 + 2 + 4


def test_loss_applies_only_to_kernel_mediated_networks():
    plan = FaultPlan(loss_rate=0.1)
    assert plan.loss_applies(ETH)
    assert not plan.loss_applies(MYR)
    assert not FaultPlan().loss_applies(ETH)


# -- zero-cost-when-off -------------------------------------------------------------


def _workload(comm):
    for i in range(5):
        if comm.rank == 0:
            comm.send(1, np.arange(256.0), tag=i)
        elif comm.rank == 1:
            comm.recv(0, tag=i)
        comm.alltoall([np.zeros(64) for _ in range(comm.size)])
        comm.allreduce(1.0)
        comm.compute(1e-4)
    st = comm.cluster.ranks[comm.rank]
    return comm.wall, comm.cpu_time, st.sent_bytes, st.recv_bytes, st.messages


def test_empty_plan_is_byte_identical():
    """The zero-cost guarantee: clocks AND accounting are byte-identical
    with faults=None, an empty FaultPlan, and no fault layer at all."""
    for net in (ETH, MYR, FAST):
        ref = VirtualCluster(3, net).run(_workload)
        assert VirtualCluster(3, net, faults=FaultPlan()).run(_workload) == ref


# -- loss pricing -------------------------------------------------------------------


def test_send_retransmits_charge_wall_cpu_and_counters():
    plan = FaultPlan(seed=11, loss_rate=0.4, retransmit_timeout=0.05)

    def rank_fn(comm):
        for i in range(30):
            if comm.rank == 0:
                comm.send(1, b"x" * 2048, tag=i)
            else:
                comm.recv(0, tag=i)
        return comm.wall, comm.cpu_time

    base = VirtualCluster(2, ETH).run(rank_fn)
    registry = MetricsRegistry()
    with use_registry(registry):
        lossy = VirtualCluster(2, ETH, faults=plan).run(rank_fn)
    snap = registry.snapshot()
    nret = snap["faults.retransmits"]["value"]
    nbytes_re = snap["faults.retransmitted_bytes"]["value"]
    assert nret > 0 and nbytes_re == 2048 * nret
    assert lossy[0][0] > base[0][0]  # sender wall stalls through RTOs
    assert lossy[0][1] > base[0][1]  # kernel resend copies burn CPU
    # Replays are bit-identical.
    with use_registry(MetricsRegistry()):
        assert VirtualCluster(2, ETH, faults=plan).run(rank_fn) == lossy


def test_loss_is_free_on_os_bypass_networks():
    plan = FaultPlan(seed=11, loss_rate=0.4)

    def rank_fn(comm):
        for i in range(10):
            if comm.rank == 0:
                comm.send(1, b"x" * 2048, tag=i)
            else:
                comm.recv(0, tag=i)
        comm.alltoall([b"y" * 512] * comm.size)
        return comm.wall, comm.cpu_time

    assert VirtualCluster(2, MYR, faults=plan).run(rank_fn) == VirtualCluster(
        2, MYR
    ).run(rank_fn)


def test_alltoall_wall_inflates_monotonically_with_loss():
    def rank_fn(comm):
        for _ in range(8):
            comm.alltoall([np.zeros(512) for _ in range(comm.size)])
        return comm.wall

    walls = []
    for rate in (0.0, 0.05, 0.1, 0.2):
        plan = FaultPlan(seed=3, loss_rate=rate) if rate else None
        walls.append(max(VirtualCluster(4, ETH, faults=plan).run(rank_fn)))
    assert all(b <= a for b, a in zip(walls, walls[1:]))
    assert walls[-1] > walls[0]


# -- degradation and stragglers -----------------------------------------------------


def test_degraded_link_stretches_point_to_point():
    def rank_fn(comm):
        if comm.rank == 0:
            comm.send(1, b"x" * 100_000, tag=0)
        elif comm.rank == 1:
            comm.recv(0, tag=0)
        return comm.wall

    base = VirtualCluster(2, FAST).run(rank_fn)
    slow = VirtualCluster(
        2, FAST, faults=FaultPlan(degraded_links={(0, 1): 4.0})
    ).run(rank_fn)
    assert slow[1] > base[1]
    # Symmetric lookup: (1, 0) prices the same as (0, 1).
    assert (
        VirtualCluster(
            2, FAST, faults=FaultPlan(degraded_links={(1, 0): 4.0})
        ).run(rank_fn)
        == slow
    )


def test_straggler_stretches_compute_and_drags_collectives():
    def rank_fn(comm):
        comm.compute(1.0)
        comm.barrier()
        return comm.wall

    base = VirtualCluster(2, FAST).run(rank_fn)
    slow = VirtualCluster(
        2, FAST, faults=FaultPlan(stragglers={1: 3.0})
    ).run(rank_fn)
    # Compute stretches 3x; the barrier itself stays healthy.
    assert slow[1] == pytest.approx(base[1] + 2.0, rel=1e-9)
    # The healthy rank waits at the barrier for the straggler.
    assert slow[0] == pytest.approx(slow[1], rel=1e-9)


# -- eager argument validation ------------------------------------------------------


def test_eager_validation_messages_name_the_offender():
    def rank_fn(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError, match="destination 5 out of range"):
                comm.send(5, b"x")
            with pytest.raises(ValueError, match="destination -1 out of range"):
                comm.send(-1, b"x")
            with pytest.raises(ValueError, match="is this rank itself"):
                comm.send(0, b"x")
            with pytest.raises(ValueError, match="invalid tag -3"):
                comm.send(1, b"x", tag=-3)
            with pytest.raises(ValueError, match="invalid tag"):
                comm.recv(1, tag=1.5)
            with pytest.raises(ValueError, match="must be an integer rank"):
                comm.recv("1")
            with pytest.raises(ValueError, match="source 2 out of range"):
                comm.recv(2)
            # np.integer ranks are fine (mesh code indexes with them).
            comm.send(np.int64(1), b"ok", tag=np.int32(4))
        else:
            comm.recv(0, tag=4)

    VirtualCluster(2, FAST).run(rank_fn)


def test_recv_parameter_validation():
    def rank_fn(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError, match="timeout"):
                comm.recv(1, timeout=0.0)
            with pytest.raises(ValueError, match="retries"):
                comm.recv(1, timeout=1.0, retries=-1)

    VirtualCluster(2, FAST).run(rank_fn)


# -- recv timeout/retry/backoff -----------------------------------------------------


def test_recv_timeout_expires_and_prices_the_wait():
    def rank_fn(comm):
        if comm.rank == 0:
            with pytest.raises(RecvTimeout) as exc:
                comm.recv(1, tag=0, timeout=0.5, retries=2, backoff=2.0)
            e = exc.value
            return e.waited, e.attempts, comm.wall, comm.cpu_time
        comm.compute(100.0)
        return None

    res = VirtualCluster(2, ETH).run(rank_fn)
    waited, attempts, wall, cpu = res[0]
    assert attempts == 3  # initial try + 2 retries
    assert waited == pytest.approx(0.5 + 1.0 + 2.0)
    assert wall == pytest.approx(waited)
    # TCP blocks in the kernel: only the busy-wait fraction burns CPU.
    assert cpu == pytest.approx(ETH.busy_wait_fraction * waited)


def test_recv_timeout_leaves_late_message_queued():
    """A message whose virtual arrival lands beyond the deadline does
    not satisfy the recv; a later untimed recv still gets it."""

    def rank_fn(comm):
        if comm.rank == 0:
            comm.compute(5.0)  # message "arrives" at t=5 on the wire
            comm.send(1, "late", tag=0)
            return None
        with pytest.raises(RecvTimeout):
            comm.recv(0, tag=0, timeout=1.0)
        got = comm.recv(0, tag=0)  # untimed: waits it out
        return got, comm.wall

    res = VirtualCluster(2, FAST).run(rank_fn)
    assert res[1][0] == "late"
    assert res[1][1] >= 5.0


def test_recv_timeout_returns_message_that_makes_the_deadline():
    def rank_fn(comm):
        if comm.rank == 0:
            comm.send(1, "in time", tag=0)
            return None
        return comm.recv(0, tag=0, timeout=10.0)

    assert VirtualCluster(2, FAST).run(rank_fn)[1] == "in time"


# -- crashes ------------------------------------------------------------------------


def test_crash_at_virtual_time_consumes_partial_compute():
    plan = FaultPlan(crashes=(CrashSpec(rank=1, at_time=0.5),))

    def rank_fn(comm):
        comm.compute(2.0)
        return comm.wall

    cl = VirtualCluster(2, FAST, faults=plan)
    res = cl.run(rank_fn)
    assert res[0] == pytest.approx(2.0)
    assert res[1] is None  # crashed rank: no result, no host error
    assert cl._crashed == {1: pytest.approx(0.5)}  # died mid-compute


def test_send_to_crashed_rank_raises_rank_failure():
    plan = FaultPlan(crashes=(CrashSpec(rank=1, at_time=0.0),))

    def rank_fn(comm):
        if comm.rank == 1:
            comm.compute(1.0)
            return "unreachable"
        comm.compute(0.1)  # let rank 1 die first (virtual ordering)
        comm.barrier()

    with pytest.raises(RankFailure) as exc:
        VirtualCluster(2, FAST, faults=plan).run(rank_fn)
    assert exc.value.rank == 1


def test_survivors_can_catch_and_continue():
    plan = FaultPlan(crashes=(CrashSpec(rank=2, at_step=0),))

    def rank_fn(comm):
        comm.mark_step()
        try:
            comm.allreduce(comm.rank)
        except RankFailure as e:
            # Survivors regroup pairwise and finish the step.
            if comm.rank == 0:
                comm.send(1, "regroup", tag=9)
                return e.rank
            return comm.recv(0, tag=9)
        return "no failure"

    res = VirtualCluster(3, FAST, faults=plan).run(rank_fn)
    assert res == [2, "regroup", None]


def test_messages_sent_before_crash_still_deliver():
    plan = FaultPlan(crashes=(CrashSpec(rank=1, at_step=1),))

    def rank_fn(comm):
        comm.mark_step()
        if comm.rank == 1:
            comm.send(0, "parting gift", tag=0)
            comm.mark_step()  # dies here
            return "unreachable"
        got = comm.recv(1, tag=0)
        with pytest.raises(RankFailure):
            comm.recv(1, tag=1)
        return got

    assert VirtualCluster(2, FAST, faults=plan).run(rank_fn)[0] == "parting gift"


# -- the verifier under fault storms ------------------------------------------------


def test_rank_traces_stay_bounded_under_fault_storm():
    plan = FaultPlan(seed=5, loss_rate=0.3, retransmit_timeout=1e-4)

    def rank_fn(comm):
        for i in range(3 * _TRACE_LEN):
            if comm.rank == 0:
                comm.send(1, b"x" * 64, tag=i)
            else:
                comm.recv(0, tag=i)
            comm.allreduce(1.0)

    cl = VirtualCluster(2, ETH, faults=plan)
    cl.run(rank_fn)
    for trace in cl.rank_traces().values():
        assert len(trace) == _TRACE_LEN


def test_byte_conservation_holds_under_loss_storm():
    """Retransmitted copies are priced but never double-counted: the
    ledger stays exact, so finalize verification passes clean."""
    plan = FaultPlan(seed=9, loss_rate=0.35, retransmit_timeout=1e-4)

    def rank_fn(comm):
        for i in range(40):
            peer = 1 - comm.rank
            if comm.rank == 0:
                comm.send(peer, b"x" * 512, tag=i)
                comm.recv(peer, tag=i)
            else:
                comm.recv(peer, tag=i)
                comm.send(peer, b"y" * 256, tag=i)
        comm.alltoall([b"z" * 128] * comm.size)

    cl = VirtualCluster(2, ETH, faults=plan)
    cl.run(rank_fn)  # verify=True: raises on any conservation drift
    st = cl.ranks
    assert sum(s.sent_bytes for s in st) == sum(s.recv_bytes for s in st)
    assert cl.verify_communication() == []  # no crash residue either


def test_crashed_rank_residue_is_crash_attributed():
    """Unmatched sends and torn collectives left by a crash are notes,
    not verifier findings — and show the crash they stem from."""
    plan = FaultPlan(crashes=(CrashSpec(rank=1, at_step=1),))

    def rank_fn(comm):
        comm.mark_step()
        if comm.rank == 1:
            comm.send(0, b"orphan" * 100, tag=77)  # never received
            comm.mark_step()  # dies
            return None
        with pytest.raises(RankFailure):
            comm.recv(1, tag=99)  # waiting on a tag the dead rank never sent
        return "survived"

    cl = VirtualCluster(2, FAST, faults=plan)
    res = cl.run(rank_fn)
    assert res[0] == "survived"
    notes = cl.verify_communication()  # must NOT raise
    assert any("crash-attributed unmatched send" in n for n in notes)
    assert any("tag=77" in n and "rank 1 crashed" in n for n in notes)


def test_fault_free_misuse_still_fails_finalize():
    """Crash attribution must not swallow real bugs: with no crash in
    the plan, an unmatched send is still a hard verifier error."""
    plan = FaultPlan(seed=1, loss_rate=0.1)

    def rank_fn(comm):
        if comm.rank == 0:
            comm.send(1, b"never read", tag=0)

    with pytest.raises(CommVerificationError, match="unmatched send"):
        VirtualCluster(2, ETH, faults=plan).run(rank_fn)
