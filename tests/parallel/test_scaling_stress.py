"""Scaling stress: 512/1024-rank virtual clusters on the event engine.

These are the O(1000)-rank smokes the thread-per-rank engine could
never run — a 512-rank ring exchange, the 1024-rank Fourier Alltoall
sweep, and a 512-rank fault storm with a mid-run crash.  Each case
asserts data correctness and ledger conservation at scale, plus a
generous host wall-clock budget: the point of the event scheduler is
that these complete in seconds, and a blown budget means an O(P^2)
term crept back into the dispatch path.

Marked ``scaling`` and therefore excluded from tier-1 (see
``pyproject.toml``); CI runs them explicitly with ``-m scaling``.
"""

import time

import numpy as np
import pytest

from repro.machines.network import NetworkModel
from repro.parallel.faults import CrashSpec, FaultPlan, RankFailure
from repro.parallel.simmpi import VirtualCluster

pytestmark = pytest.mark.scaling

NET = NetworkModel(
    "stress-eth",
    latency_us=10,
    bandwidth=100e6,
    cpu_overhead_per_byte=2e-9,
    busy_wait_fraction=0.1,
)

# Generous per-case host budgets (seconds).  The observed costs are
# ~0.1-1.5 s on a modest container; the budgets catch order-of-growth
# regressions, not machine jitter.
RING_BUDGET_S = 30.0
ALLTOALL_BUDGET_S = 120.0
STORM_BUDGET_S = 60.0


def _elapsed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_ring_512_ranks_within_budget():
    nprocs, rounds, ndoubles = 512, 4, 128

    def rank_fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        buf = np.full(ndoubles, float(comm.rank))
        acc = 0.0
        for i in range(rounds):
            comm.send(right, buf, tag=i)
            buf = comm.recv(left, tag=i)
            acc += float(buf[0])
        return acc

    cluster = VirtualCluster(nprocs, NET)
    results, host_s = _elapsed(lambda: cluster.run(rank_fn))
    assert host_s < RING_BUDGET_S, f"512-rank ring took {host_s:.1f}s"
    # After r rounds the payload seen at rank k originated at k - r.
    expect = [
        float(sum((k - r - 1) % nprocs for r in range(rounds)))
        for k in range(nprocs)
    ]
    assert results == expect
    sent = sum(st.sent_bytes for st in cluster.ranks)
    recvd = sum(st.recv_bytes for st in cluster.ranks)
    assert sent == recvd == nprocs * rounds * ndoubles * 8
    # Every rank advanced its virtual clock past the pure-latency floor.
    assert all(st.wall > rounds * NET.latency_us * 1e-6 for st in cluster.ranks)


def test_alltoall_1024_ranks_within_budget():
    nprocs = 1024

    def rank_fn(comm):
        chunk = np.full(8, float(comm.rank))
        out = comm.alltoall([chunk] * comm.size)
        comm.barrier()
        return float(sum(c[0] for c in out))

    cluster = VirtualCluster(nprocs, NET)
    results, host_s = _elapsed(lambda: cluster.run(rank_fn))
    assert host_s < ALLTOALL_BUDGET_S, f"1024-rank alltoall took {host_s:.1f}s"
    assert results == [float(nprocs * (nprocs - 1) // 2)] * nprocs
    stats = cluster.engine_stats()
    # The scheduler actually context-switched O(P) times, not O(P^2).
    assert 0 < stats["scheduler.switches"] < 50 * nprocs


def test_fault_storm_512_ranks_with_crash():
    nprocs = 512
    plan = FaultPlan(
        seed=1999,
        loss_rate=0.02,
        stragglers={1: 1.5, 5: 2.0},
        degraded_links={(0, 1): 3.0},
    )

    def rank_fn(comm):
        chunk = np.full(8, float(comm.rank))
        out = comm.alltoall([chunk] * comm.size)
        comm.barrier()
        return float(sum(c[0] for c in out))

    storm = VirtualCluster(nprocs, NET, faults=plan)
    storm_res, host_s = _elapsed(lambda: storm.run(rank_fn))
    assert host_s < STORM_BUDGET_S, f"512-rank fault storm took {host_s:.1f}s"
    # Loss, stragglers and the degraded link never corrupt data — they
    # only inflate the wall against a clean run.
    assert storm_res == [float(nprocs * (nprocs - 1) // 2)] * nprocs

    clean = VirtualCluster(nprocs, NET)
    clean.run(rank_fn)
    assert storm.max_wall > clean.max_wall


def test_crash_at_scale_propagates_to_all_survivors():
    nprocs = 512
    plan = FaultPlan(crashes=(CrashSpec(rank=100, at_time=1e-4),))

    def rank_fn(comm):
        try:
            comm.compute(2e-4)
            for _ in range(2):
                comm.barrier()
                comm.compute(2e-4)
            return "finished"
        except RankFailure as e:
            return f"lost rank {e.rank}"

    cluster = VirtualCluster(nprocs, NET, faults=plan)
    results, host_s = _elapsed(lambda: cluster.run(rank_fn))
    assert host_s < STORM_BUDGET_S, f"512-rank crash case took {host_s:.1f}s"
    assert cluster.ranks[100].crashed
    survivors = [r for i, r in enumerate(results) if i != 100]
    assert survivors == ["lost rank 100"] * (nprocs - 1)
