"""Tests for the simmpi communication verifier.

Covers the acceptance criterion: a mismatched send fails at cluster
finalize with a per-rank trace, and the runtime checks catch deadlocks
and collective-ordering mismatches.
"""

import numpy as np
import pytest

from repro.machines.network import NetworkModel
from repro.parallel.simmpi import (
    CommVerificationError,
    VirtualCluster,
    payload_bytes,
)

FAST = NetworkModel("test-net", latency_us=10, bandwidth=100e6)


def cluster(n, **kw):
    return VirtualCluster(n, FAST, **kw)


# ------------------------------------------------------------- finalize checks


def test_unmatched_send_detected_at_finalize():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(4.0), tag=7)  # nobody receives this

    with pytest.raises(CommVerificationError) as exc:
        cluster(2).run(fn)
    msg = str(exc.value)
    assert "unmatched send" in msg
    assert "rank 0 -> rank 1 tag=7" in msg
    assert "byte conservation" in msg  # 32 sent, 0 received
    assert any("send -> 1 tag=7" in e for e in exc.value.rank_traces[0])


def test_unmatched_send_problems_are_structured():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, b"xyzw")

    with pytest.raises(CommVerificationError) as exc:
        cluster(2).run(fn)
    kinds = [p.split(":")[0] for p in exc.value.problems]
    assert "unmatched send" in kinds
    assert exc.value.rank_traces  # per-rank trace attached


def test_verify_off_lets_unmatched_send_pass():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, 1.0)
        return comm.rank

    assert cluster(2, verify=False).run(fn) == [0, 1]


def test_clean_patterns_verify_ok():
    def fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = comm.sendrecv(right, float(comm.rank), left)
        comm.barrier()
        total = comm.allreduce(got)
        return total

    res = cluster(4).run(fn)
    assert res == [6.0] * 4


def test_byte_conservation_bookkeeping_is_exact():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, np.zeros(100))
        else:
            comm.recv(0)

    cl = cluster(2)
    cl.run(fn)
    assert cl.ranks[0].sent_bytes == 800
    assert cl.ranks[1].recv_bytes == 800
    cl.verify_communication()  # explicitly re-check: clean


# -------------------------------------------------------------- runtime checks


def test_deadlock_detected_with_rank_trace():
    def fn(comm):
        # Everyone receives, nobody sends: a textbook deadlock.
        return comm.recv((comm.rank + 1) % comm.size)

    with pytest.raises(CommVerificationError) as exc:
        cluster(2).run(fn)
    msg = str(exc.value)
    assert "deadlock" in msg
    assert "rank 0 blocked in recv" in msg
    assert "rank 1 blocked in recv" in msg


def test_deadlock_rank_stranded_by_finished_peer():
    def fn(comm):
        if comm.rank == 1:
            return comm.recv(0)  # rank 0 never sends and exits
        return None

    with pytest.raises(CommVerificationError) as exc:
        cluster(2).run(fn)
    assert "deadlock" in str(exc.value)
    assert "rank 1 blocked in recv(source=0" in str(exc.value)


def test_collective_order_mismatch_detected():
    def fn(comm):
        if comm.rank == 0:
            comm.barrier()
        else:
            comm.allreduce(1.0)

    with pytest.raises(CommVerificationError) as exc:
        cluster(2).run(fn)
    assert "collective ordering mismatch" in str(exc.value)


def test_collective_count_mismatch_is_caught():
    def fn(comm):
        comm.barrier()
        if comm.rank == 0:
            comm.barrier()  # one rank calls an extra barrier

    with pytest.raises(CommVerificationError) as exc:
        cluster(2).run(fn)
    # The extra barrier can never complete: detected as a deadlock
    # (rank 0 blocked) once rank 1 finishes.
    assert "deadlock" in str(exc.value) or "incomplete collective" in str(exc.value)


def test_error_still_beats_verifier():
    # A real rank error is re-raised as the root cause, not wrapped in
    # peer-failure or verification noise.
    def fn(comm):
        if comm.rank == 0:
            raise ValueError("boom")
        comm.recv(0)

    with pytest.raises(ValueError, match="boom"):
        cluster(2).run(fn)


def test_cluster_reusable_after_clean_run():
    def fn(comm):
        return comm.allreduce(1.0)

    cl = cluster(3)
    assert cl.run(fn) == [3.0] * 3
    assert cl.run(fn) == [3.0] * 3


# ------------------------------------------------------------- payload pricing


def test_payload_bytes_bool_and_scalars():
    assert payload_bytes(True) == 1
    assert payload_bytes(False) == 1
    assert payload_bytes(np.bool_(True)) == 1
    assert payload_bytes(7) == 8
    assert payload_bytes(3.14) == 8
    assert payload_bytes(np.float64(1.0)) == 8
    assert payload_bytes(np.float32(1.0)) == 4
    assert payload_bytes(np.int32(1)) == 4
    assert payload_bytes(1 + 2j) == 16


def test_payload_bytes_zero_d_arrays():
    assert payload_bytes(np.array(1.0)) == 8
    assert payload_bytes(np.array(1, dtype=np.int16)) == 2


def test_payload_bytes_sequences_consistent():
    # Homogeneous, mixed and nested sequences all price element-wise.
    assert payload_bytes((1.0, 2.0, 3)) == 24
    assert payload_bytes([1.0, True, np.float32(0.0)]) == 13
    assert payload_bytes([np.zeros(2), [1.0, 2.0]]) == 32
    assert payload_bytes(()) == 0
    assert payload_bytes(None) == 0


def test_payload_bytes_dicts_price_contents():
    d = {0: np.zeros(4), 1: np.zeros(2)}
    assert payload_bytes(d) == 8 + 32 + 8 + 16
