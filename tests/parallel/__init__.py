# test package
