import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.machines.network import NetworkModel
from repro.mesh.generators import bluff_body_mesh, rectangle_quads
from repro.mesh.partition import partition_mesh
from repro.parallel.distributed import DistributedHelmholtz
from repro.parallel.simmpi import VirtualCluster
from repro.solvers.helmholtz import HelmholtzCG

NET = NetworkModel("t", latency_us=5, bandwidth=1e9)


def sample(space, fn):
    xq, yq = space.coords()
    return fn(xq, yq)


def run_distributed(mesh, P, nprocs, lam, tags, fn, g=None):
    space_ref = FunctionSpace(mesh, P)
    parts = partition_mesh(mesh, nprocs)

    def rank_fn(comm):
        space = FunctionSpace(mesh, P)
        dh = DistributedHelmholtz(comm, space, parts, lam, tags, tol=1e-11)
        rhs = dh.assemble_rhs(sample(space, fn))
        if dh.dirichlet_global.size and g is not None:
            from repro.assembly.global_system import project_dirichlet

            dofs, vals = project_dirichlet(space, tags, g)
            lut = dict(zip(dofs.tolist(), vals.tolist()))
            bc = np.array([lut[int(d)] for d in dh.dirichlet_global])
        else:
            bc = None
        x = dh.solve(rhs, bc)
        return dh.local_dofs, x, dh.last_iterations

    res = VirtualCluster(nprocs, NET).run(rank_fn)
    # Serial reference.
    solver = HelmholtzCG(space_ref, lam, tags, tol=1e-11)
    u_ref = solver.solve(lambda x, y: 0.0, g) if callable(fn) is False else None
    rhs_ref = space_ref.load_vector(sample(space_ref, fn))
    bc_ref = solver.bc_values(g)
    u_ref = solver.solve_rhs(rhs_ref, bc_ref)
    return res, u_ref


def test_distributed_matches_serial_quads():
    mesh = rectangle_quads(4, 4, 0, 1, 0, 1)
    fn = lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    res, u_ref = run_distributed(
        mesh, 4, 4, 1.0, ("left", "right", "top", "bottom"), fn
    )
    for dofs, x, iters in res:
        np.testing.assert_allclose(x, u_ref[dofs], atol=1e-7)
        assert iters > 0


def test_distributed_matches_serial_with_inhomogeneous_bc():
    mesh = rectangle_quads(3, 3, 0, 1, 0, 1)
    fn = lambda x, y: np.ones_like(x)  # noqa: E731
    g = lambda x, y: x + y  # noqa: E731
    res, u_ref = run_distributed(mesh, 3, 3, 0.0, ("left", "bottom"), fn, g)
    for dofs, x, _ in res:
        np.testing.assert_allclose(x, u_ref[dofs], atol=1e-7)


def test_distributed_on_bluff_body_mesh():
    mesh = bluff_body_mesh(m=3, nr=1)
    fn = lambda x, y: np.exp(-0.1 * (x**2 + y**2))  # noqa: E731
    res, u_ref = run_distributed(mesh, 3, 4, 2.0, ("inflow", "wall"), fn)
    for dofs, x, _ in res:
        np.testing.assert_allclose(x, u_ref[dofs], atol=1e-6)


def test_shared_dofs_consistent_across_ranks():
    mesh = rectangle_quads(4, 2, 0, 2, 0, 1)
    fn = lambda x, y: x * y  # noqa: E731
    res, _ = run_distributed(mesh, 3, 2, 1.0, ("left",), fn)
    (d0, x0, _), (d1, x1, _) = res
    common = sorted(set(d0.tolist()) & set(d1.tolist()))
    assert common  # interface exists
    l0 = {int(g): v for g, v in zip(d0, x0)}
    l1 = {int(g): v for g, v in zip(d1, x1)}
    for g in common:
        assert l0[g] == pytest.approx(l1[g], abs=1e-9)


def test_parts_shape_validation():
    mesh = rectangle_quads(2, 2)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 3)
        DistributedHelmholtz(comm, space, np.zeros(3), 1.0)

    with pytest.raises(ValueError):
        VirtualCluster(1, NET).run(rank_fn)


def test_iteration_counts_comparable_to_serial():
    mesh = rectangle_quads(4, 4, 0, 1, 0, 1)
    space_ref = FunctionSpace(mesh, 4)
    tags = ("left", "right", "top", "bottom")
    fn = lambda x, y: np.sin(np.pi * x) * np.cos(np.pi * y)  # noqa: E731
    serial = HelmholtzCG(space_ref, 1.0, tags, tol=1e-11)
    serial.solve(fn)
    res, _ = run_distributed(mesh, 4, 4, 1.0, tags, fn)
    iters = res[0][2]
    # Same operator, same preconditioner: iteration counts match closely.
    assert abs(iters - serial.last_iterations) <= 3
