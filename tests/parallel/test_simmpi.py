import numpy as np
import pytest

from repro.machines.catalog import CPUS, NETWORKS
from repro.machines.network import NetworkModel
from repro.parallel.simmpi import VirtualCluster, payload_bytes

FAST = NetworkModel("test-net", latency_us=10, bandwidth=100e6)


def cluster(n, net=FAST, **kw):
    return VirtualCluster(n, net, **kw)


def test_validation():
    with pytest.raises(ValueError):
        VirtualCluster(0, FAST)


def test_payload_bytes():
    assert payload_bytes(np.zeros(10)) == 80
    assert payload_bytes(b"abc") == 3
    assert payload_bytes(3.14) == 8
    assert payload_bytes((1.0, 2.0, 3)) == 24
    assert payload_bytes({"a": 1}) > 0


def test_send_recv_roundtrip():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(5.0))
            return None
        return comm.recv(0)

    cl = cluster(2)
    res = cl.run(fn)
    np.testing.assert_array_equal(res[1], np.arange(5.0))


def test_message_ordering_fifo():
    def fn(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(1, float(i), tag=3)
            return None
        return [comm.recv(0, tag=3) for _ in range(5)]

    res = cluster(2).run(fn)
    assert res[1] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_tags_are_independent_channels():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, "a", tag=1)
            comm.send(1, "b", tag=2)
            return None
        # Receive in the opposite order of sending: must match by tag.
        b = comm.recv(0, tag=2)
        a = comm.recv(0, tag=1)
        return (a, b)

    res = cluster(2).run(fn)
    assert res[1] == ("a", "b")


def test_send_validation():
    def fn(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError):
                comm.send(0, 1.0)
            with pytest.raises(ValueError):
                comm.send(5, 1.0)
            with pytest.raises(ValueError):
                comm.recv(0)
        return None

    cluster(2).run(fn)


def test_pingpong_time_matches_network_model():
    nbytes = 80000
    reps = 10

    def fn(comm):
        msg = np.zeros(nbytes // 8)
        for _ in range(reps):
            if comm.rank == 0:
                comm.send(1, msg)
                comm.recv(1)
            else:
                comm.recv(0)
                comm.send(0, msg)
        return comm.wall

    cl = cluster(2)
    res = cl.run(fn)
    expect = 2 * reps * FAST.send_time(nbytes)
    assert res[0] == pytest.approx(expect, rel=0.15)


def test_wall_includes_wait_cpu_does_not():
    def fn(comm):
        if comm.rank == 0:
            comm.compute(1.0)  # slow producer
            comm.send(1, 1.0)
            return (comm.wall, comm.cpu_time)
        comm.recv(0)  # waits ~1 s of virtual time
        return (comm.wall, comm.cpu_time)

    res = cluster(2).run(fn)
    wall1, cpu1 = res[1]
    assert wall1 > 1.0  # waited for the producer
    assert cpu1 < 0.1  # but burned no CPU


def test_tcp_networks_charge_cpu():
    eth = NETWORKS["RoadRunner, eth-internode"]

    def fn(comm):
        if comm.rank == 0:
            comm.send(1, np.zeros(100000))
        else:
            comm.recv(0)
        return comm.cpu_time

    res = VirtualCluster(2, eth).run(fn)
    assert res[0] > 0
    assert res[1] > 0


def test_compute_flops_uses_cpu_model():
    cl = cluster(1, cpu=CPUS["pentium-ii-450"])

    def fn(comm):
        comm.compute_flops(105e6)  # app rate is 105 Mflop/s
        return comm.wall

    res = cl.run(fn)
    assert res[0] == pytest.approx(1.0, rel=0.01)


def test_compute_flops_without_cpu_model():
    def fn(comm):
        with pytest.raises(RuntimeError):
            comm.compute_flops(1.0)

    cluster(1).run(fn)


def test_barrier_synchronises_clocks():
    def fn(comm):
        comm.compute(0.1 * (comm.rank + 1))
        comm.barrier()
        return comm.wall

    res = cluster(4).run(fn)
    assert max(res) - min(res) < 1e-12
    assert res[0] > 0.4  # everyone waits for the slowest (0.4 s)


def test_alltoall_correctness():
    def fn(comm):
        chunks = [
            np.full(3, 10.0 * comm.rank + d) for d in range(comm.size)
        ]
        out = comm.alltoall(chunks)
        # out[s] came from rank s and carried value 10*s + my_rank.
        for s, arr in enumerate(out):
            np.testing.assert_array_equal(arr, 10.0 * s + comm.rank)
        return comm.wall

    cluster(4).run(fn)


def test_alltoall_priced_by_model():
    m = 8000

    def fn(comm):
        chunks = [np.zeros(m // 8) for _ in range(comm.size)]
        comm.alltoall(chunks)
        return comm.wall

    res = cluster(4).run(fn)
    expect = FAST.alltoall_time(4, m)
    assert res[0] == pytest.approx(expect, rel=0.05)


def test_allreduce_ops():
    def fn(comm):
        s = comm.allreduce(float(comm.rank + 1), op="sum")
        mx = comm.allreduce(float(comm.rank), op="max")
        mn = comm.allreduce(float(comm.rank), op="min")
        arr = comm.allreduce(np.full(2, float(comm.rank)), op="sum")
        return (s, mx, mn, arr)

    res = cluster(3).run(fn)
    for s, mx, mn, arr in res:
        assert s == 6.0
        assert mx == 2.0
        assert mn == 0.0
        np.testing.assert_array_equal(arr, 3.0)


def test_allreduce_unknown_op():
    def fn(comm):
        comm.allreduce(1.0, op="prod")

    with pytest.raises(ValueError):
        cluster(2).run(fn)


def test_bcast_and_gather():
    def fn(comm):
        v = comm.bcast(42.0 if comm.rank == 0 else None, root=0)
        g = comm.gather(float(comm.rank), root=0)
        return (v, g)

    res = cluster(4).run(fn)
    assert all(v == 42.0 for v, _ in res)
    assert res[0][1] == [0.0, 1.0, 2.0, 3.0]
    assert all(g is None for _, g in res[1:])


def test_allgather():
    def fn(comm):
        return comm.allgather(np.array([float(comm.rank)]))

    res = cluster(3).run(fn)
    for r in res:
        np.testing.assert_array_equal(np.concatenate(r), [0.0, 1.0, 2.0])


def test_repeated_collectives():
    def fn(comm):
        tot = 0.0
        for i in range(10):
            tot += comm.allreduce(float(comm.rank + i), op="sum")
        return tot

    res = cluster(3).run(fn)
    expect = sum(3.0 + 3 * i for i in range(10))
    assert all(r == expect for r in res)


def test_error_propagates():
    def fn(comm):
        if comm.rank == 0:
            raise RuntimeError("boom")
        comm.recv(0)  # would deadlock without error propagation

    with pytest.raises(RuntimeError):
        cluster(2).run(fn)


def test_intranode_network_selected():
    slow = NetworkModel("slow", latency_us=1000, bandwidth=1e6)
    fast = NetworkModel("fast", latency_us=1, bandwidth=1e9)

    def fn(comm):
        if comm.rank == 0:
            comm.send(1, np.zeros(1000))  # same node
            comm.send(2, np.zeros(1000))  # other node
        elif comm.rank in (1, 2):
            comm.recv(0)
        return comm.wall

    cl = VirtualCluster(4, slow, procs_per_node=2, intranode=fast)
    res = cl.run(fn)
    assert res[1] < res[2]  # intranode delivery is much faster


def test_clock_monotonic_per_rank():
    def fn(comm):
        ws = [comm.wall]
        comm.compute(0.01)
        ws.append(comm.wall)
        comm.barrier()
        ws.append(comm.wall)
        comm.allreduce(1.0)
        ws.append(comm.wall)
        return ws

    for ws in cluster(3).run(fn):
        assert all(a <= b + 1e-15 for a, b in zip(ws, ws[1:]))
