"""Critical-path acceptance at scale: the 512-rank Alltoall sweep.

The ISSUE's acceptance criterion: ``trace_report --critical-path`` on a
512-rank scaling-bench Alltoall sweep must attribute >= 95% of the
virtual makespan to named (rank, stage, resource) segments, and the
zero-latency counterfactual must reproduce the Ethernet-vs-Myrinet
ordering without re-running.  This test drives the same
``run_critpath_pattern`` code path as the CLI and the CI smoke.

Marked ``scaling`` and therefore excluded from tier-1 (see
``pyproject.toml``); CI runs them explicitly with ``-m scaling``.
"""

import time

import pytest

from repro.apps.trace_report import run_critpath_pattern

pytestmark = pytest.mark.scaling

BUDGET_S = 180.0


def test_alltoall_512_rank_attribution_and_counterfactuals():
    t0 = time.perf_counter()
    analysis = run_critpath_pattern("alltoall", nprocs=512)
    host_s = time.perf_counter() - t0
    assert host_s < BUDGET_S, f"512-rank critpath took {host_s:.1f}s"

    # >= 95% of the makespan lands on named path segments.
    assert analysis["coverage"] >= 0.95
    mk = analysis["makespan"]
    assert mk > 0.0
    for seg in analysis["top_segments"]:
        assert seg["rank"] >= 0
        assert set(seg["components"]) == {
            "cpu", "overhead", "latency", "bandwidth", "idle"
        }
        assert sum(seg["components"].values()) == pytest.approx(seg["seconds"])

    # Resource split is a complete partition of the path.
    assert sum(analysis["resource_pct"].values()) == pytest.approx(100.0)

    # On commodity Ethernet the sweep is wire-dominated: latency plus
    # bandwidth, not cpu, carry the path.
    rs = analysis["resource_seconds"]
    assert rs["latency"] + rs["bandwidth"] > rs["cpu"]

    # Counterfactual ordering WITHOUT re-running: removing wire latency
    # and swapping in the OS-bypass Myrinet model must both beat the
    # recorded Ethernet makespan — the paper's fabric comparison from a
    # single recorded run.
    cf = analysis["counterfactuals"]
    assert cf["zero_latency"] < mk
    assert cf["swap:myrinet"] < mk
    # Identity-style bounds: no counterfactual beats zeroing everything.
    assert cf["zero_latency"] >= rs["cpu"]
