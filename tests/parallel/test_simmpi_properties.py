"""Property-based tests of the virtual-time MPI runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.network import NetworkModel
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("prop", latency_us=5, bandwidth=1e9)


@given(
    st.integers(2, 5),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(1, 50)),
        min_size=1,
        max_size=20,
    ),
    st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_random_traffic_delivered_exactly_once(nprocs, raw_msgs, seed):
    """Arbitrary point-to-point traffic: every message arrives once,
    with the right payload, and clocks never run backwards."""
    msgs = [
        (s % nprocs, d % nprocs, n)
        for s, d, n in raw_msgs
        if (s % nprocs) != (d % nprocs)
    ]
    if not msgs:
        return
    rng = np.random.default_rng(seed)
    payloads = {i: rng.standard_normal(n) for i, (_, _, n) in enumerate(msgs)}

    def fn(comm):
        clocks = [comm.wall]
        for i, (src, dst, _) in enumerate(msgs):
            if comm.rank == src:
                comm.send(dst, payloads[i], tag=i)
                clocks.append(comm.wall)
        received = {}
        for i, (src, dst, _) in enumerate(msgs):
            if comm.rank == dst:
                received[i] = comm.recv(src, tag=i)
                clocks.append(comm.wall)
        assert all(a <= b + 1e-15 for a, b in zip(clocks, clocks[1:]))
        return received

    results = VirtualCluster(nprocs, NET).run(fn)
    for i, (src, dst, n) in enumerate(msgs):
        got = results[dst][i]
        np.testing.assert_array_equal(got, payloads[i])
    # Nothing delivered to the wrong rank.
    for r, rec in enumerate(results):
        for i in rec:
            assert msgs[i][1] == r


@given(st.integers(2, 6), st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_repeated_mixed_collectives_consistent(nprocs, rounds):
    """Interleaved allreduce/alltoall/barrier rounds stay consistent
    across ranks regardless of thread scheduling."""

    def fn(comm):
        out = []
        for k in range(rounds):
            s = comm.allreduce(float(comm.rank + k))
            chunks = [np.array([float(comm.rank * 10 + d + k)]) for d in range(comm.size)]
            parts = comm.alltoall(chunks)
            comm.barrier()
            out.append((s, float(sum(p[0] for p in parts))))
        return out

    results = VirtualCluster(nprocs, NET).run(fn)
    for k in range(rounds):
        expect_sum = sum(r + k for r in range(nprocs))
        for rank, res in enumerate(results):
            s, tot = res[k]
            assert s == pytest.approx(expect_sum)
            # sum over sources of (src*10 + my_rank + k)
            expect_tot = sum(s0 * 10 + rank + k for s0 in range(nprocs))
            assert tot == pytest.approx(expect_tot)


@given(st.integers(2, 4), st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_virtual_time_deterministic_across_runs(nprocs, seed):
    """The virtual clocks are a deterministic function of the program,
    independent of real thread interleaving."""

    def fn(comm):
        rng = np.random.default_rng(seed + comm.rank)
        comm.compute(float(rng.uniform(0, 1e-3)))
        comm.allreduce(1.0)
        if comm.rank == 0:
            comm.send(1, np.zeros(100))
        elif comm.rank == 1:
            comm.recv(0)
        comm.barrier()
        return comm.wall

    a = VirtualCluster(nprocs, NET).run(fn)
    b = VirtualCluster(nprocs, NET).run(fn)
    np.testing.assert_allclose(a, b, rtol=0, atol=0)
