"""simmpi -> observability layer: comm/idle spans, metrics, rank_traces."""

import numpy as np
import pytest

from repro.machines.network import NetworkModel
from repro.obs import MetricsRegistry, Trace, use_registry
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("test", latency_us=10, bandwidth=1e8, busy_wait_fraction=0.5)


def _run_exchange(trace=None, registry=None):
    cl = VirtualCluster(2, NET, trace=trace)

    def work(comm):
        data = np.ones(512) * comm.rank
        if comm.rank == 0:
            comm.compute(0.1)  # rank 0 arrives late at the collective
        comm.alltoall([data, data])
        if comm.rank == 0:
            comm.send(1, data, tag=3)
        else:
            comm.recv(0, tag=3)
        comm.barrier()
        return comm.wall

    if registry is not None:
        with use_registry(registry):
            return cl, cl.run(work)
    return cl, cl.run(work)


def test_untraced_run_emits_nothing():
    cl, walls = _run_exchange()
    assert cl.trace is None
    assert walls[0] == walls[1]  # barrier synchronises


def test_comm_spans_on_virtual_timeline():
    trace = Trace()
    _cl, _walls = _run_exchange(trace=trace)
    assert trace.nranks == 2
    events = trace.events()
    by_rank_cat = {}
    for e in events:
        by_rank_cat.setdefault((e.rank, e.cat), []).append(e)

    send = next(e for e in events if e.name == "send -> 1")
    assert send.rank == 0
    assert send.args["bytes"] == 512 * 8
    assert send.args["tag"] == 3
    recv = next(e for e in events if e.name == "recv <- 0")
    assert recv.rank == 1
    assert recv.args["waited"] >= 0.0

    # Rank 1 idles at the alltoall while rank 0 computes 0.1s.
    idle = [e for e in by_rank_cat[(1, "idle")] if "alltoall" in e.name]
    assert idle and idle[0].dur == pytest.approx(0.1, rel=1e-6)
    # Timestamps are virtual: the collective starts at rank 1's entry.
    assert idle[0].ts == pytest.approx(0.0, abs=1e-9)
    assert not [
        e for e in by_rank_cat.get((0, "idle"), []) if "alltoall" in e.name
    ]

    colls = [e for e in events if e.cat == "comm" and e.name == "alltoall"]
    assert {e.rank for e in colls} == {0, 1}
    barriers = [e for e in events if e.name == "barrier"]
    assert len(barriers) == 2


def test_metrics_from_comm():
    reg = MetricsRegistry()
    _run_exchange(registry=reg)
    snap = reg.snapshot()
    assert snap["comm.sends"]["value"] == 1.0
    assert snap["comm.recvs"]["value"] == 1.0
    assert snap["comm.collectives"]["value"] == 4.0  # 2 ranks x (a2a+barrier)
    assert snap["comm.collective.alltoall"]["value"] == 2.0
    assert snap["comm.collective.barrier"]["value"] == 2.0
    # point-to-point + both ranks' alltoall chunks
    assert snap["comm.message_bytes"]["count"] == 3
    assert snap["comm.bytes_sent"]["value"] == snap["comm.bytes_recv"]["value"]


def test_rank_traces_public_api():
    cl, _walls = _run_exchange()
    traces = cl.rank_traces()
    assert sorted(traces) == [0, 1]
    assert any(t.startswith("alltoall #") for t in traces[0])
    assert "send -> 1 tag=3 (4096B)" in traces[0]
    assert "recv <- 0 tag=3 (4096B)" in traces[1]
    assert any(t.startswith("barrier #") for t in traces[1])
    subset = cl.rank_traces([1])
    assert sorted(subset) == [1]
    # Returned lists are copies, not the live rings.
    subset[1].append("tampered")
    assert "tampered" not in cl.rank_traces([1])[1]


def test_trace_reuse_across_runs_appends():
    trace = Trace()
    cl = VirtualCluster(2, NET, trace=trace)

    def ping(comm):
        if comm.rank == 0:
            comm.send(1, 1.0)
        else:
            comm.recv(0)

    cl.run(ping)
    n1 = len(trace.events())
    cl.run(ping)
    assert len(trace.events()) > n1
