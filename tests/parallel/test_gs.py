import numpy as np
import pytest

from repro.machines.network import NetworkModel
from repro.parallel.gs import GatherScatter
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel("test", latency_us=10, bandwidth=100e6)


def test_shared_ids_must_be_sorted():
    def fn(comm):
        GatherScatter(comm, np.array([3, 1, 2]))

    # The validation fires on every rank before any collective.
    with pytest.raises(ValueError):
        VirtualCluster(2, NET).run(fn)


def test_pairwise_exchange_two_ranks():
    # Ranks 0 and 1 share global dofs 5 and 9.
    def fn(comm):
        ids = np.array([5, 9]) if comm.rank == 0 else np.array([5, 9])
        gs = GatherScatter(comm, ids)
        vals = np.array([1.0, 2.0]) if comm.rank == 0 else np.array([10.0, 20.0])
        return gs.exchange(vals)

    res = VirtualCluster(2, NET).run(fn)
    for r in res:
        np.testing.assert_array_equal(r, [11.0, 22.0])


def test_private_ids_untouched():
    def fn(comm):
        # id 100+rank is private; id 7 is shared.
        ids = np.array(sorted([7, 100 + comm.rank]))
        gs = GatherScatter(comm, ids)
        vals = np.where(ids == 7, 1.0, 5.0 + comm.rank)
        out = gs.exchange(vals)
        return ids, out

    res = VirtualCluster(2, NET).run(fn)
    for rank, (ids, out) in enumerate(res):
        assert out[list(ids).index(7)] == 2.0
        assert out[list(ids).index(100 + rank)] == 5.0 + rank


def test_tree_path_for_multiply_shared():
    # Global dof 0 is shared by all four ranks (a cross point).
    def fn(comm):
        ids = np.array([0, 10 + comm.rank])
        gs = GatherScatter(comm, ids)
        vals = np.array([1.0 + comm.rank, 0.5])
        out = gs.exchange(vals)
        return out[0]

    res = VirtualCluster(4, NET).run(fn)
    assert all(r == pytest.approx(1.0 + 2.0 + 3.0 + 4.0) for r in res)


def test_mixed_pairwise_and_tree():
    # dof 0: all ranks; dof 1: ranks 0,1; dof 2: ranks 2,3.
    def fn(comm):
        if comm.rank in (0, 1):
            ids = np.array([0, 1])
        else:
            ids = np.array([0, 2])
        gs = GatherScatter(comm, ids)
        vals = np.ones(2) * (comm.rank + 1)
        return ids, gs.exchange(vals)

    res = VirtualCluster(4, NET).run(fn)
    for rank, (ids, out) in enumerate(res):
        assert out[0] == pytest.approx(10.0)  # 1+2+3+4
        if rank in (0, 1):
            assert out[1] == pytest.approx(3.0)  # 1+2
        else:
            assert out[1] == pytest.approx(7.0)  # 3+4


def test_multiplicity_and_average():
    def fn(comm):
        ids = np.array([0, 5 + comm.rank])
        gs = GatherScatter(comm, ids)
        np.testing.assert_array_equal(gs.multiplicity, [3.0, 1.0])
        out = gs.average(np.array([6.0, 2.0]))
        return out

    res = VirtualCluster(3, NET).run(fn)
    for out in res:
        assert out[0] == pytest.approx(6.0)  # (6+6+6)/3
        assert out[1] == pytest.approx(2.0)


def test_values_shape_check():
    def fn(comm):
        gs = GatherScatter(comm, np.array([0]))
        with pytest.raises(ValueError):
            gs.exchange(np.ones(3))
        gs.exchange(np.ones(1))  # peers must still match the collective

    VirtualCluster(2, NET).run(fn)


def test_gs_matches_serial_assembly():
    # Distributed sum over random sharing pattern == dense np.add.at.
    rng = np.random.default_rng(3)
    nranks, nglobal = 4, 30
    owner_sets = [sorted(rng.choice(nglobal, size=12, replace=False)) for _ in range(nranks)]
    values = [rng.standard_normal(12) for _ in range(nranks)]
    dense = np.zeros(nglobal)
    for ids, vals in zip(owner_sets, values):
        np.add.at(dense, ids, vals)

    def fn(comm):
        ids = np.array(owner_sets[comm.rank])
        gs = GatherScatter(comm, ids)
        return gs.exchange(values[comm.rank])

    res = VirtualCluster(nranks, NET).run(fn)
    for rank, out in enumerate(res):
        np.testing.assert_allclose(out, dense[owner_sets[rank]], rtol=1e-12)


def test_no_alltoall_used():
    # The ALE path must not use Alltoall (Section 4.2.2); verify the
    # communicator's alltoall is never invoked by GS.
    calls = []

    def fn(comm):
        orig = comm.alltoall

        def spy(chunks):
            calls.append(1)
            return orig(chunks)

        comm.alltoall = spy
        ids = np.array([0, 1 + comm.rank])
        gs = GatherScatter(comm, ids)
        gs.exchange(np.ones(2))

    VirtualCluster(3, NET).run(fn)
    assert calls == []
