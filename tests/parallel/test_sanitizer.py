"""Tests for the runtime determinism sanitizer (vector-clock races).

Covers the acceptance criteria: a deliberately planted cross-rank
unordered mutation is detected (negative test), and a ``sanitize=True``
run is charge-parity clean — byte-identical virtual clocks and
OpCounter totals vs. an unsanitized run (property test).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import blas
from repro.linalg.counters import OpCounter
from repro.machines.network import NetworkModel
from repro.obs.tracer import Trace
from repro.parallel.sanitizer import DeterminismError, RaceDetector
from repro.parallel.simmpi import VirtualCluster

FAST = NetworkModel("test-net", latency_us=10, bandwidth=100e6)


def cluster(n, **kw):
    return VirtualCluster(n, FAST, **kw)


# ----------------------------------------------------------- race detection


def test_planted_cross_rank_race_detected():
    shared = {}

    def fn(comm):
        # Both ranks mutate the same dict with no message ordering the
        # accesses: a real race (host thread scheduling decides the
        # final contents).
        comm.shared_write(shared, label="result-table")
        shared[comm.rank] = comm.rank

    with pytest.raises(DeterminismError) as exc:
        cluster(2, sanitize=True).run(fn)
    msg = str(exc.value)
    assert "data race" in msg
    assert "result-table" in msg
    assert "REPRO006" in msg  # shared vocabulary with the static rule
    assert exc.value.races
    race = exc.value.races[0]
    assert {race.first.rank, race.second.rank} == {0, 1}
    assert "test_sanitizer" in race.first.site  # access site recorded


def test_message_ordered_accesses_pass():
    shared = {}

    def fn(comm):
        if comm.rank == 0:
            comm.shared_write(shared)
            shared["x"] = 1.0
            comm.send(1, b"token", tag=1)
        else:
            comm.recv(0, tag=1)
            comm.shared_write(shared)
            shared["x"] = 2.0

    cluster(2, sanitize=True).run(fn)  # happens-before via the message


def test_collective_orders_pre_and_post_accesses():
    shared = {}

    def fn(comm):
        if comm.rank == 0:
            comm.shared_write(shared)
            shared["x"] = 1.0
        comm.barrier()
        if comm.rank == 1:
            comm.shared_write(shared)
            shared["x"] = 2.0

    cluster(2, sanitize=True).run(fn)  # pre-barrier < post-barrier


def test_both_sides_after_barrier_still_race():
    # A barrier does NOT order two accesses that both happen after it.
    shared = {}

    def fn(comm):
        comm.barrier()
        comm.shared_write(shared)
        shared[comm.rank] = 1.0

    with pytest.raises(DeterminismError):
        cluster(2, sanitize=True).run(fn)


def test_read_read_is_not_a_race():
    shared = {"x": 1.0}

    def fn(comm):
        comm.shared_read(shared)
        return shared["x"]

    assert cluster(2, sanitize=True).run(fn) == [1.0, 1.0]


def test_unsanitized_run_ignores_shared_declarations():
    shared = {}

    def fn(comm):
        obj = comm.shared_write(shared)
        obj[comm.rank] = comm.rank
        return comm.rank

    assert cluster(2).run(fn) == [0, 1]  # no detector, no error


def test_sanitize_annotates_trace_with_vector_clocks():
    trace = Trace()

    def fn(comm):
        comm.barrier()
        return comm.rank

    cluster(2, sanitize=True, trace=trace).run(fn)
    assert trace.annotations["sanitize.races"] == 0
    vcs = trace.annotations["sanitize.vector_clocks"]
    assert set(vcs) == {0, 1}
    assert all(len(vc) == 2 for vc in vcs.values())


def test_detector_state_resets_between_runs():
    shared = {}

    def racy(comm):
        comm.shared_write(shared)
        shared[comm.rank] = 1.0

    def clean(comm):
        return comm.rank

    cl = cluster(2, sanitize=True)
    with pytest.raises(DeterminismError):
        cl.run(racy)
    assert cl.run(clean) == [0, 1]  # prior run's races don't leak


# ---------------------------------------------------- detector unit behavior


def test_vector_clock_message_ordering():
    det = RaceDetector(2)
    det.record(0, "obj-a", "write", "a", "site0")
    vc = det.on_send(0)
    det.on_recv(1, vc)
    det.record(1, "obj-a", "write", "a", "site1")
    assert det.races() == []


def test_vector_clock_concurrent_writes_race():
    det = RaceDetector(2)
    target = object()
    det.record(0, target, "write", None, "site0")
    det.record(1, target, "write", None, "site1")
    races = det.races()
    assert len(races) == 1
    assert races[0].first.op == races[0].second.op == "write"


def test_equal_looking_clocks_from_different_ranks_are_concurrent():
    # Every access ticks the rank's own component first, so two fresh
    # ranks can never produce comparable clocks by accident.
    det = RaceDetector(3)
    target = object()
    det.record(0, target, "write", None, "s0")
    det.record(2, target, "write", None, "s2")
    assert len(det.races()) == 1


def test_detector_rejects_bad_op():
    det = RaceDetector(2)
    with pytest.raises(ValueError):
        det.record(0, object(), "mutate", None, "s")


# ------------------------------------------------------------- charge parity


def _workload(comm, ops):
    """Mixed compute/communication; returns everything priced."""
    rng = np.random.default_rng(100 + comm.rank)
    x = rng.standard_normal(32)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    with OpCounter() as c:
        for op in ops:
            if op == "exchange":
                x = x + comm.sendrecv(right, x, left, tag=11)
            elif op == "allreduce":
                comm.allreduce(float(x.sum()))
            elif op == "barrier":
                comm.barrier()
            elif op == "compute":
                comm.compute(1.0e-4)
                blas.ddot(x, x)
            elif op == "shared":
                comm.shared_read(FAST, label="network-model")
    return (comm.wall, comm.cpu_time, c.flops, c.bytes, c.calls)


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["exchange", "allreduce", "barrier", "compute", "shared"]),
        min_size=1,
        max_size=12,
    )
)
def test_sanitize_is_charge_parity_clean(ops):
    plain = cluster(2).run(_workload, ops)
    sanitized = cluster(2, sanitize=True).run(_workload, ops)
    # Byte-identical, not approximately equal: the detector must never
    # touch the virtual clocks or the ambient OpCounter.
    assert sanitized == plain


def test_sanitize_parity_includes_sent_bytes():
    ops = ["exchange", "allreduce", "compute", "exchange", "barrier"]
    cl_plain = cluster(2)
    cl_san = cluster(2, sanitize=True)
    cl_plain.run(_workload, ops)
    cl_san.run(_workload, ops)
    for a, b in zip(cl_plain.ranks, cl_san.ranks):
        assert a.wall == b.wall
        assert a.cpu == b.cpu
        assert a.sent_bytes == b.sent_bytes
        assert a.recv_bytes == b.recv_bytes
        assert a.messages == b.messages
