"""Differential engine parity: event scheduler vs thread-engine oracle.

The event-driven scheduler must preserve every simulator contract
byte-for-byte.  Each scenario here runs the identical program on both
engines and asserts bitwise-equal results, per-rank virtual clocks and
byte ledgers, ``rank_traces()`` event strings, metrics snapshots,
per-rank obs trace streams, and (where enabled) sanitizer vector
clocks.  The scenarios are the repo's real workloads: a NekTar-F
Fourier step, a fault-plan storm (loss + stragglers + degraded link), a
rank crash, and the Tufo-Fischer gather-scatter assembly.
"""

import numpy as np
import pytest

from repro.assembly.space import FunctionSpace
from repro.machines.catalog import CPUS, NETWORKS
from repro.machines.network import NetworkModel
from repro.mesh.generators import rectangle_quads
from repro.ns.nektar_f import NekTarF
from repro.obs import MetricsRegistry, Trace, use_registry
from repro.parallel.faults import CrashSpec, FaultPlan, RankFailure
from repro.parallel.gs import GatherScatter
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel(
    "parity-net",
    latency_us=10,
    bandwidth=100e6,
    cpu_overhead_per_byte=2e-9,
    busy_wait_fraction=0.25,
)

STORM = FaultPlan(
    seed=7,
    loss_rate=0.15,
    stragglers={1: 1.5},
    degraded_links={(0, 2): 2.5},
)

# Run-level annotations that legitimately differ between engines (the
# engine records its own name and scheduler statistics).
ENGINE_ANNOTATIONS = ("cluster.engine", "cluster.engine_stats")


def canon(obj):
    """Bitwise-comparable canonical form (ndarrays -> dtype/shape/bytes)."""
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape, obj.tobytes())
    if isinstance(obj, (list, tuple)):
        return tuple(canon(x) for x in obj)
    if isinstance(obj, dict):
        return tuple(sorted((canon(k), canon(v)) for k, v in obj.items()))
    if isinstance(obj, np.generic):
        return ("scalar", str(obj.dtype), obj.tobytes())
    return obj


def run_fingerprint(
    engine,
    nprocs,
    fn,
    *,
    network=NET,
    cpu=None,
    faults=None,
    sanitize=False,
):
    """Run ``fn`` on one engine; return the full observable state."""
    registry = MetricsRegistry()
    trace = Trace()
    cluster = VirtualCluster(
        nprocs,
        network,
        cpu=cpu,
        faults=faults,
        sanitize=sanitize,
        trace=trace,
        engine=engine,
    )
    with use_registry(registry):
        try:
            results = cluster.run(fn)
            outcome = ("ok", canon(results))
        except Exception as exc:
            outcome = ("raised", type(exc).__name__, str(exc))
    fp = {
        "outcome": outcome,
        "ranks": [
            (
                st.wall,
                st.cpu,
                st.sent_bytes,
                st.recv_bytes,
                st.messages,
                st.crashed,
                tuple(st.coll_kinds),
            )
            for st in cluster.ranks
        ],
        "rank_traces": cluster.rank_traces(),
        "metrics": canon(
            {
                k: v
                for k, v in registry.snapshot().items()
                if not k.startswith("scheduler.")
            }
        ),
        "events": {
            r: [
                (e.name, e.cat, e.ts, e.dur, e.rank, canon(e.args), e.ph)
                for e in tr.events
            ]
            for r, tr in sorted(trace.tracers.items())
        },
        "annotations": canon(
            {
                k: v
                for k, v in trace.annotations.items()
                if k not in ENGINE_ANNOTATIONS
            }
        ),
    }
    if sanitize:
        fp["vector_clocks"] = cluster._sanitizer.clocks()
    return fp


def assert_parity(nprocs, fn, **kwargs):
    event = run_fingerprint("event", nprocs, fn, **kwargs)
    threads = run_fingerprint("threads", nprocs, fn, **kwargs)
    for key in event:
        assert event[key] == threads[key], f"engine mismatch in {key}"
    return event


# -- scenarios ---------------------------------------------------------------------


def test_nektar_f_step_parity():
    """A real NekTar-F Fourier step: numerics, charges, clocks, traces."""
    mesh = rectangle_quads(2, 1, 0.0, 2 * np.pi, 0.0, np.pi)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 4)
        bcs = {
            "left": (
                lambda m, x, y, t: 1.0 if m == 0 else 0.0,
                lambda m, x, y, t: 0.0,
                lambda m, x, y, t: 0.0,
            )
        }
        nf = NekTarF(
            comm,
            space,
            nz=4,
            nu=0.1,
            dt=5e-3,
            velocity_bcs=bcs,
            pressure_dirichlet=("right",),
            charge_compute=True,
        )
        nf.set_initial(
            lambda m, x, y, t: 1.0 if m == 0 else 0.0,
            lambda m, x, y, t: 0.0,
            lambda m, x, y, t: 0.0,
        )
        nf.run(1)
        return nf.u_hat.copy(), comm.wall, comm.cpu_time

    fp = assert_parity(
        2,
        rank_fn,
        network=NETWORKS["RoadRunner, eth-internode"],
        cpu=CPUS["pentium-ii-450"],
    )
    assert fp["outcome"][0] == "ok"
    # The scenario exercised real traffic on both engines.
    assert all(st[4] > 0 for st in fp["ranks"])


def test_fault_storm_parity():
    """Loss + straggler + degraded link: every fault branch, both engines."""

    def rank_fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.compute(1e-3)
        acc = 0.0
        for i in range(3):
            comm.send(right, np.full(64, float(comm.rank)), tag=i)
            acc += float(comm.recv(left, tag=i, timeout=5.0, retries=1)[0])
        out = comm.alltoall([np.full(8, float(comm.rank))] * comm.size)
        acc += float(sum(c[0] for c in out))
        return acc, comm.wall, comm.cpu_time

    fp = assert_parity(4, rank_fn, faults=STORM)
    assert fp["outcome"][0] == "ok"
    # The storm actually engaged the retransmit path.
    snapshot = dict(fp["metrics"])
    assert dict(snapshot["faults.retransmits"])["value"] > 0


def test_crash_parity():
    """A mid-run crash: survivors observe RankFailure identically."""
    plan = FaultPlan(crashes=(CrashSpec(rank=2, at_time=2e-4),))

    def rank_fn(comm):
        comm.compute(1e-4)
        try:
            for _ in range(2):
                comm.barrier()
                comm.compute(2e-4)
            return "finished"
        except RankFailure as e:
            return f"lost rank {e.rank}"

    fp = assert_parity(4, rank_fn, faults=plan)
    assert fp["outcome"][0] == "ok"
    assert fp["ranks"][2][5] is True  # rank 2 crashed on both engines


def test_gather_scatter_parity():
    """Tufo-Fischer assembly: pairwise exchange + tree allreduce."""

    def rank_fn(comm):
        # dof 0 is a cross-point (all ranks); dof 10+r pairs r with r+1.
        me = comm.rank
        ids = sorted({0, 10 + me, 10 + (me - 1) % comm.size})
        gs = GatherScatter(comm, np.array(ids))
        vals = np.arange(1.0, len(ids) + 1) * (me + 1)
        out = gs.exchange(vals)
        return out, comm.wall

    fp = assert_parity(4, rank_fn)
    assert fp["outcome"][0] == "ok"


def test_sanitize_vector_clock_parity():
    """Vector clocks are a pure function of the message graph, not of
    host scheduling: both engines must build identical clocks."""
    shared = {"x": 0.0}

    def rank_fn(comm):
        if comm.rank == 0:
            comm.shared_write(shared, label="x")
            comm.send(1, 1.0)
        elif comm.rank == 1:
            comm.recv(0)
            comm.shared_read(shared, label="x")
        comm.barrier()
        comm.allreduce(float(comm.rank))
        return comm.wall

    fp = assert_parity(3, rank_fn, sanitize=True)
    assert fp["outcome"][0] == "ok"
    assert len(fp["vector_clocks"]) == 3


def test_deadlock_report_parity():
    """Even the failure diagnostics agree: a planted communication
    deadlock produces the same CommVerificationError on both engines."""

    def rank_fn(comm):
        # Both ranks receive first: a classic head-to-head deadlock.
        comm.recv((comm.rank + 1) % comm.size)
        comm.send((comm.rank + 1) % comm.size, 1.0)

    event = run_fingerprint("event", 2, rank_fn)
    threads = run_fingerprint("threads", 2, rank_fn)
    assert event["outcome"] == threads["outcome"]
    assert event["outcome"][0] == "raised"
    assert event["outcome"][1] == "CommVerificationError"
    assert "deadlock" in event["outcome"][2]


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        VirtualCluster(2, NET, engine="fibers")
