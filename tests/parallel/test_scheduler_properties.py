"""Hypothesis property tests for the scheduler engines.

Random-but-terminating communication programs (ring shifts with random
strides and payloads, interleaved with random collectives) over 2-128
ranks must:

* terminate on both engines (no hangs, no scheduler stalls);
* conserve bytes cluster-wide (the verifier's ledger, asserted here
  explicitly as well);
* produce engine-independent results, virtual clocks, charge ledgers
  and sanitizer vector clocks.

Programs are terminating by construction — every round is either a
global collective or a full-ring shift where each rank sends before it
receives — so any non-termination is an engine bug, not a program bug.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.network import NetworkModel
from repro.parallel.simmpi import VirtualCluster

NET = NetworkModel(
    "prop-net",
    latency_us=5,
    bandwidth=1e9,
    cpu_overhead_per_byte=1e-9,
    busy_wait_fraction=0.5,
)

# One program round: a ring shift (stride seed, payload doubles) or a
# named global collective.
_round = st.one_of(
    st.tuples(
        st.just("shift"), st.integers(0, 1_000_000), st.integers(1, 64)
    ),
    st.sampled_from(
        ["barrier", "allreduce", "alltoall", "bcast", "allgather", "gather"]
    ),
)

programs = st.tuples(
    st.integers(2, 128),
    st.lists(_round, min_size=1, max_size=5),
)


def _run_program(comm, program):
    """Execute one generated program; returns a numeric checksum."""
    acc = float(comm.rank)
    for i, op in enumerate(program):
        if isinstance(op, tuple):
            _, stride_seed, ndoubles = op
            stride = 1 + stride_seed % (comm.size - 1)
            dest = (comm.rank + stride) % comm.size
            src = (comm.rank - stride) % comm.size
            comm.send(dest, np.full(ndoubles, acc), tag=i)
            acc += float(comm.recv(src, tag=i)[0])
        elif op == "barrier":
            comm.barrier()
        elif op == "allreduce":
            acc += comm.allreduce(float(comm.rank))
        elif op == "alltoall":
            out = comm.alltoall([np.array([acc])] * comm.size)
            acc += float(sum(c[0] for c in out)) / comm.size
        elif op == "bcast":
            acc += comm.bcast(float(acc) if comm.rank == 0 else None)
        elif op == "allgather":
            acc += float(sum(comm.allgather(float(comm.rank))))
        elif op == "gather":
            got = comm.gather(float(comm.rank))
            if comm.rank == 0:
                acc += float(sum(got))
    return acc, comm.wall, comm.cpu_time


def _fingerprint(engine, nprocs, program):
    cluster = VirtualCluster(nprocs, NET, sanitize=True, engine=engine)
    results = cluster.run(_run_program, program)
    sent = sum(st_.sent_bytes for st_ in cluster.ranks)
    recvd = sum(st_.recv_bytes for st_ in cluster.ranks)
    assert sent == recvd, f"byte conservation broken: {sent} != {recvd}"
    return {
        "results": results,
        "ranks": [
            (st_.wall, st_.cpu, st_.sent_bytes, st_.recv_bytes, st_.messages)
            for st_ in cluster.ranks
        ],
        "traces": cluster.rank_traces(),
        "clocks": cluster._sanitizer.clocks(),
    }


@settings(max_examples=25, deadline=None)
@given(programs)
def test_random_programs_terminate_with_engine_parity(case):
    nprocs, program = case
    event = _fingerprint("event", nprocs, program)
    threads = _fingerprint("threads", nprocs, program)
    assert event == threads


@settings(max_examples=10, deadline=None)
@given(programs)
def test_event_engine_is_run_to_run_deterministic(case):
    nprocs, program = case
    first = _fingerprint("event", nprocs, program)
    second = _fingerprint("event", nprocs, program)
    assert first == second
