# test package
