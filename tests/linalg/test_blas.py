import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import blas
from repro.linalg.counters import OpCounter

vec = hnp.arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


def test_dcopy_copies_and_counts():
    x = np.arange(5.0)
    y = np.zeros(5)
    with OpCounter() as c:
        blas.dcopy(x, y)
    assert np.array_equal(y, x)
    assert c.flops == 0.0
    assert c.bytes == 16 * 5


def test_dcopy_shape_mismatch():
    with pytest.raises(ValueError):
        blas.dcopy(np.zeros(3), np.zeros(4))


@given(vec, st.floats(-10, 10, allow_nan=False))
@settings(max_examples=50)
def test_daxpy_matches_reference(x, alpha):
    y = np.ones_like(x)
    expect = alpha * x + np.ones_like(x)
    blas.daxpy(alpha, x, y)
    np.testing.assert_allclose(y, expect, rtol=1e-13, atol=1e-9)


@given(vec)
@settings(max_examples=50)
def test_ddot_matches_numpy(x):
    y = x[::-1].copy()
    assert blas.ddot(x, y) == pytest.approx(float(np.dot(x, y)), rel=1e-12, abs=1e-6)


def test_ddot_flop_count():
    with OpCounter() as c:
        blas.ddot(np.ones(100), np.ones(100))
    assert c.flops == 200


def test_dscal_in_place():
    x = np.arange(1.0, 5.0)
    out = blas.dscal(2.0, x)
    assert out is x
    np.testing.assert_array_equal(x, [2.0, 4.0, 6.0, 8.0])


def test_dnrm2():
    assert blas.dnrm2(np.array([3.0, 4.0])) == pytest.approx(5.0)


def test_dgemv_plain_and_transposed():
    a = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    x = np.array([1.0, -1.0])
    y = np.zeros(3)
    blas.dgemv(1.0, a, x, 0.0, y)
    np.testing.assert_allclose(y, a @ x)
    xt = np.array([1.0, 0.0, -1.0])
    yt = np.ones(2)
    blas.dgemv(2.0, a, xt, 3.0, yt, trans=True)
    np.testing.assert_allclose(yt, 2.0 * (a.T @ xt) + 3.0)


def test_dgemv_dimension_mismatch():
    with pytest.raises(ValueError):
        blas.dgemv(1.0, np.zeros((3, 2)), np.zeros(3), 0.0, np.zeros(3))


def test_dgemm_all_transpose_combinations():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((4, 3))
    b = rng.standard_normal((3, 5))
    for ta in (False, True):
        for tb in (False, True):
            aa = a.T if ta else a
            bb = b.T if tb else b
            c = rng.standard_normal((4, 5))
            expect = 0.5 * (a @ b) + 2.0 * c
            blas.dgemm(0.5, aa, bb, 2.0, c, transa=ta, transb=tb)
            np.testing.assert_allclose(c, expect, rtol=1e-12)


def test_dgemm_beta_zero_ignores_garbage():
    a = np.eye(3)
    b = np.arange(9.0).reshape(3, 3)
    c = np.full((3, 3), np.nan)
    blas.dgemm(1.0, a, b, 0.0, c)
    np.testing.assert_allclose(c, b)


def test_dgemm_flop_count():
    with OpCounter() as c:
        blas.dgemm(1.0, np.ones((2, 3)), np.ones((3, 4)), 0.0, np.zeros((2, 4)))
    assert c.flops == 2 * 2 * 3 * 4


def test_vector_kernels():
    x = np.array([1.0, 2.0, 3.0])
    y = np.array([4.0, 5.0, 6.0])
    z = np.empty(3)
    blas.dvmul(x, y, z)
    np.testing.assert_array_equal(z, [4.0, 10.0, 18.0])
    blas.dvadd(x, y, z)
    np.testing.assert_array_equal(z, [5.0, 7.0, 9.0])
    blas.dsvtvp(2.0, x, y, z)
    np.testing.assert_array_equal(z, [6.0, 9.0, 12.0])


def test_analytic_counts_match_kernels():
    n = 37
    with OpCounter() as c:
        blas.daxpy(1.0, np.ones(n), np.ones(n))
    assert c.flops == blas.flop_count("daxpy", n)
    assert c.bytes == blas.byte_count("daxpy", n)
    with OpCounter() as c:
        blas.dgemm(1.0, np.ones((n, n)), np.ones((n, n)), 0.0, np.zeros((n, n)))
    assert c.flops == blas.flop_count("dgemm", n)


def test_unknown_routine_rejected():
    with pytest.raises(ValueError):
        blas.flop_count("zgemm", 4)
    with pytest.raises(ValueError):
        blas.byte_count("zgemm", 4)


def test_counters_nest():
    outer = OpCounter()
    with outer:
        blas.ddot(np.ones(10), np.ones(10))
        with OpCounter() as inner:
            blas.ddot(np.ones(10), np.ones(10))
        assert inner.flops == 20
    assert outer.flops == 40
    assert outer.by_label["ddot"][2] == 2


def test_counter_inactive_is_noop():
    # No active counter: kernels still work.
    assert blas.ddot(np.ones(4), np.ones(4)) == pytest.approx(4.0)


# -- batched kernels -----------------------------------------------------------


def test_ddot_batched_matches_ddot():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((3, 4, 7))
    y = rng.standard_normal((3, 4, 7))
    with OpCounter() as cb:
        out = blas.ddot_batched(x, y)
    assert out.shape == (3, 4)
    with OpCounter() as cp:
        ref = np.array([[blas.ddot(x[i, j], y[i, j]) for j in range(4)] for i in range(3)])
    np.testing.assert_allclose(out, ref, atol=1e-12)
    assert (cb.flops, cb.bytes) == (cp.flops, cp.bytes)
    with pytest.raises(ValueError):
        blas.ddot_batched(x, y[:, :2])


@pytest.mark.parametrize("trans", [False, True])
@pytest.mark.parametrize("shared", [False, True])
def test_dgemv_batched_matches_dgemv(trans, shared):
    rng = np.random.default_rng(1)
    nb, m, n = 5, 4, 6
    a_stack = rng.standard_normal((nb, m, n))
    a = a_stack[0] if shared else a_stack
    x = rng.standard_normal((nb, m if trans else n))
    y = rng.standard_normal((nb, n if trans else m))
    for alpha, beta in ((1.0, 0.0), (2.0, 0.5), (-1.0, 1.0)):
        yb = y.copy()
        with OpCounter() as cb:
            blas.dgemv_batched(alpha, a, x, beta, yb, trans=trans)
        yp = y.copy()
        with OpCounter() as cp:
            for i in range(nb):
                ai = a if shared else a[i]
                blas.dgemv(alpha, ai, x[i], beta, yp[i], trans=trans)
        np.testing.assert_allclose(yb, yp, atol=1e-12)
        assert (cb.flops, cb.bytes) == (cp.flops, cp.bytes)
        for lab, (fp, bp, _) in cp.by_label.items():
            fb, bb, _ = cb.by_label[lab]
            assert (fb, bb) == (fp, bp)


def test_dgemv_batched_validation():
    a = np.zeros((3, 4, 5))
    with pytest.raises(ValueError, match="float64"):
        blas.dgemv_batched(1.0, a, np.zeros((3, 5)), 0.0, np.zeros((3, 4), np.float32))
    with pytest.raises(ValueError, match="dimension mismatch"):
        blas.dgemv_batched(1.0, a, np.zeros((3, 6)), 0.0, np.zeros((3, 4)))
    with pytest.raises(ValueError, match="batch-shape mismatch"):
        blas.dgemv_batched(1.0, a, np.zeros((2, 5)), 0.0, np.zeros((2, 4)))
    with pytest.raises(ValueError, match=">= 2-D"):
        blas.dgemv_batched(1.0, np.zeros(4), np.zeros((3, 5)), 0.0, np.zeros((3, 4)))


@pytest.mark.parametrize("transa", [False, True])
@pytest.mark.parametrize("transb", [False, True])
def test_dgemm_batched_matches_dgemm(transa, transb):
    rng = np.random.default_rng(2)
    nb, m, n, k = 4, 3, 5, 6
    a = rng.standard_normal((nb, k, m) if transa else (nb, m, k))
    b = rng.standard_normal((nb, n, k) if transb else (nb, k, n))
    c = rng.standard_normal((nb, m, n))
    for alpha, beta in ((1.0, 0.0), (0.5, 0.0), (2.0, -1.0)):
        cb_ = c.copy()
        with OpCounter() as cnt_b:
            blas.dgemm_batched(alpha, a, b, beta, cb_, transa=transa, transb=transb)
        cp_ = c.copy()
        with OpCounter() as cnt_p:
            for i in range(nb):
                blas.dgemm(alpha, a[i], b[i], beta, cp_[i], transa=transa, transb=transb)
        np.testing.assert_allclose(cb_, cp_, atol=1e-12)
        assert (cnt_b.flops, cnt_b.bytes) == (cnt_p.flops, cnt_p.bytes)


def test_dgemm_batched_shared_operands_and_validation():
    rng = np.random.default_rng(3)
    a = rng.standard_normal((3, 4))        # shared
    b = rng.standard_normal((5, 4, 2))     # stacked
    c = np.zeros((5, 3, 2))
    with OpCounter() as cnt:
        blas.dgemm_batched(1.0, a, b, 0.0, c)
    ref = np.stack([a @ b[i] for i in range(5)])
    np.testing.assert_allclose(c, ref, atol=1e-12)
    assert cnt.flops == 5 * 2 * 3 * 2 * 4
    with pytest.raises(ValueError, match="dimension mismatch"):
        blas.dgemm_batched(1.0, a, b, 0.0, np.zeros((5, 3, 3)))
    with pytest.raises(ValueError, match="batch-shape mismatch"):
        blas.dgemm_batched(1.0, a, b[:4], 0.0, c)
    with pytest.raises(ValueError, match="float64"):
        blas.dgemm_batched(1.0, a, b, 0.0, np.zeros((5, 3, 2), np.float32))
    with pytest.raises(ValueError, match=">= 2-D"):
        blas.dgemm_batched(1.0, a, b, 0.0, np.zeros(3))
