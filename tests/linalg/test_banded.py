import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.banded import BandedSPDSolver, bandwidth, to_banded
from repro.linalg.counters import OpCounter


def spd_banded(n: int, kd: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    for j in range(n):
        for i in range(max(0, j - kd), j + 1):
            a[i, j] = a[j, i] = rng.uniform(-1, 1)
    # Diagonal dominance guarantees SPD.
    a += np.eye(n) * (2.0 * kd + 2.0)
    return a


def test_bandwidth_basic():
    a = np.diag(np.ones(5))
    assert bandwidth(a) == 0
    a[0, 2] = a[2, 0] = 1.0
    assert bandwidth(a) == 2
    assert bandwidth(np.zeros((4, 4))) == 0


def test_bandwidth_requires_square():
    with pytest.raises(ValueError):
        bandwidth(np.zeros((2, 3)))


def test_to_banded_roundtrip_layout():
    a = spd_banded(6, 2)
    ab = to_banded(a, 2)
    assert ab.shape == (3, 6)
    # LAPACK upper storage: ab[kd + i - j, j] == a[i, j]
    for j in range(6):
        for i in range(max(0, j - 2), j + 1):
            assert ab[2 + i - j, j] == a[i, j]


@given(st.integers(2, 20), st.integers(0, 4), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_banded_solver_matches_dense(n, kd, seed):
    kd = min(kd, n - 1)
    a = spd_banded(n, kd, seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal(n)
    solver = BandedSPDSolver.from_dense(a)
    x = solver.solve(b)
    np.testing.assert_allclose(a @ x, b, rtol=1e-9, atol=1e-9)


def test_banded_solver_detects_bandwidth():
    a = spd_banded(10, 3)
    solver = BandedSPDSolver.from_dense(a)
    assert solver.kd == 3


def test_banded_solver_multiple_rhs():
    a = spd_banded(8, 2)
    b = np.random.default_rng(2).standard_normal((8, 3))
    solver = BandedSPDSolver.from_dense(a)
    x = solver.solve(b)
    np.testing.assert_allclose(a @ x, b, rtol=1e-9, atol=1e-9)


def test_from_banded_storage():
    a = spd_banded(7, 2)
    solver = BandedSPDSolver.from_banded(to_banded(a, 2))
    b = np.ones(7)
    np.testing.assert_allclose(a @ solver.solve(b), b, rtol=1e-9)


def test_solve_before_factorise_rejected():
    s = BandedSPDSolver(n=3, kd=1)
    with pytest.raises(RuntimeError):
        s.solve(np.ones(3))


def test_solve_charges_ops():
    a = spd_banded(20, 4)
    solver = BandedSPDSolver.from_dense(a)
    with OpCounter() as c:
        solver.solve(np.ones(20))
    assert c.flops == pytest.approx(4.0 * 20 * 4)
    assert c.by_label and "dpbtrs" in c.by_label


def test_solve_flops_property():
    a = spd_banded(12, 3)
    solver = BandedSPDSolver.from_dense(a)
    assert solver.solve_flops == pytest.approx(4.0 * 12 * 3)
