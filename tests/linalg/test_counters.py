"""OpCounter nesting, re-entry, and thread-isolation semantics."""

import threading

import pytest

from repro.linalg.counters import OpCounter, active_counter, charge


def test_charge_without_active_counter_is_noop():
    charge(1e9, 1e9, "nowhere")  # must not raise
    assert active_counter() is None


def test_basic_accumulation_and_labels():
    with OpCounter() as c:
        charge(10.0, 80.0, "k1")
        charge(5.0, 40.0, "k1")
        charge(1.0, 8.0)
    assert c.flops == 16.0
    assert c.bytes == 128.0
    assert c.calls == 3
    assert c.by_label["k1"] == (15.0, 120.0, 2)


def test_nested_counters_both_charged_once():
    with OpCounter() as outer:
        charge(1.0, 8.0, "a")
        with OpCounter() as inner:
            charge(2.0, 16.0, "b")
        charge(4.0, 32.0, "c")
    assert inner.flops == 2.0
    assert outer.flops == 7.0  # 1 + 2 + 4: inner charge propagated exactly once
    assert outer.by_label["b"] == (2.0, 16.0, 1)
    assert "a" not in inner.by_label


def test_three_deep_nesting_propagates_through_chain():
    with OpCounter() as a:
        with OpCounter() as b:
            with OpCounter() as c:
                charge(1.0, 8.0)
    assert (a.flops, b.flops, c.flops) == (1.0, 1.0, 1.0)
    assert (a.calls, b.calls, c.calls) == (1, 1, 1)


def test_reentry_of_same_counter_charges_once():
    # Historical bug: `with c: with c:` made c its own parent and the
    # charge walk recursed forever (or double-charged).
    c = OpCounter()
    with c:
        with c:
            charge(3.0, 24.0, "k")
        # still active after the inner exit
        assert active_counter() is c
        charge(1.0, 8.0)
    assert c.flops == 4.0
    assert c.calls == 2
    assert active_counter() is None


def test_exit_restores_previous_active():
    with OpCounter() as outer:
        with OpCounter():
            pass
        assert active_counter() is outer
    assert active_counter() is None


def test_thread_isolation_independent_actives():
    results = {}
    barrier = threading.Barrier(2)

    def worker(name, flops):
        with OpCounter() as c:
            barrier.wait()  # both threads hold an active counter at once
            charge(flops, 8.0, name)
            barrier.wait()
            results[name] = (c.flops, dict(c.by_label))

    t1 = threading.Thread(target=worker, args=("t1", 10.0))
    t2 = threading.Thread(target=worker, args=("t2", 20.0))
    t1.start(), t2.start()
    t1.join(), t2.join()
    assert results["t1"] == (10.0, {"t1": (10.0, 8.0, 1)})
    assert results["t2"] == (20.0, {"t2": (20.0, 8.0, 1)})


def test_counter_not_active_on_other_threads():
    seen = {}

    def worker():
        seen["active"] = active_counter()

    with OpCounter():
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["active"] is None


def test_parent_chain_crosses_threads_exactly_once():
    # A rank thread opening its own counter under a main-thread counter
    # context does NOT inherit it (thread-local), so the parent link only
    # forms within one thread.  Charges on the rank thread stay local.
    with OpCounter() as main_counter:

        def worker():
            with OpCounter() as local:
                charge(7.0, 8.0)
                assert local.flops == 7.0

        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert main_counter.flops == 0.0


def test_negative_nesting_counts_are_not_mangled_by_exceptions():
    c = OpCounter()
    with pytest.raises(ValueError):
        with c:
            raise ValueError("inner failure")
    assert active_counter() is None
    with c:  # reusable after the exception
        charge(1.0, 1.0)
    assert c.flops == 1.0
