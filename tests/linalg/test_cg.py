import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.cg import pcg


def random_spd(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return m @ m.T + n * np.eye(n)


@given(st.integers(2, 25), st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_pcg_solves_random_spd(n, seed):
    a = random_spd(n, seed)
    b = np.random.default_rng(seed + 1).standard_normal(n)
    res = pcg(lambda v: a @ v, b, np.diag(a), tol=1e-12)
    assert res.converged
    np.testing.assert_allclose(a @ res.x, b, rtol=1e-7, atol=1e-7)


def test_pcg_zero_rhs():
    a = random_spd(5, 3)
    res = pcg(lambda v: a @ v, np.zeros(5), np.diag(a))
    assert res.converged
    assert res.iterations == 0
    np.testing.assert_array_equal(res.x, np.zeros(5))


def test_pcg_initial_guess_exact_solution():
    a = random_spd(6, 4)
    x_true = np.arange(1.0, 7.0)
    b = a @ x_true
    res = pcg(lambda v: a @ v, b, np.diag(a), x0=x_true, tol=1e-10)
    assert res.converged
    assert res.iterations == 0


def test_pcg_identity_converges_one_iteration():
    b = np.array([1.0, -2.0, 3.0])
    res = pcg(lambda v: v.copy(), b, np.ones(3), tol=1e-14)
    assert res.converged
    assert res.iterations <= 2
    np.testing.assert_allclose(res.x, b)


def test_pcg_maxiter_reports_nonconvergence():
    a = random_spd(30, 7)
    b = np.ones(30)
    res = pcg(lambda v: a @ v, b, np.diag(a), tol=1e-14, maxiter=1)
    assert not res.converged
    assert res.iterations == 1


def test_pcg_rejects_nonpositive_diag():
    with pytest.raises(ValueError):
        pcg(lambda v: v, np.ones(3), np.array([1.0, 0.0, 1.0]))


def test_pcg_rejects_indefinite_operator():
    a = -np.eye(4)
    with pytest.raises(np.linalg.LinAlgError):
        pcg(lambda v: a @ v, np.ones(4), np.ones(4))


def test_pcg_custom_dot_used():
    calls = []

    def mydot(x, y):
        calls.append(1)
        return float(np.dot(x, y))

    a = random_spd(8, 9)
    b = np.ones(8)
    res = pcg(lambda v: a @ v, b, np.diag(a), dot=mydot, tol=1e-10)
    assert res.converged
    assert len(calls) >= res.iterations  # one rz + one pAp per iteration


def test_pcg_jacobi_preconditioner_helps_on_scaled_system():
    # Badly scaled diagonal system: Jacobi preconditioning solves in O(1) iters.
    d = np.logspace(0, 8, 40)
    b = np.ones(40)
    res = pcg(lambda v: d * v, b, d, tol=1e-12)
    assert res.converged
    assert res.iterations <= 5
    np.testing.assert_allclose(d * res.x, b, rtol=1e-8)
