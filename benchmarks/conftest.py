"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` file regenerates one of the paper's tables or
figures (model mode) and times the real substrate underneath it with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1999)  # the paper's vintage
