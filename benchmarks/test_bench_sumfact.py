"""Ablation: tabulated dgemv vs. sum-factorised operator evaluation.

NekTar evaluates tensor-product transforms by sum-factorisation; this
ablation quantifies the design choice the paper's stage-2/6 shares rest
on — two O(P^3) contractions instead of one O(P^4) tabulated
matrix-vector product per element.
"""

import numpy as np
import pytest

from repro.spectral.expansions import QuadExpansion

ORDER = 10


@pytest.fixture(scope="module")
def setup():
    exp = QuadExpansion(ORDER)
    c = np.random.default_rng(0).standard_normal(exp.nmodes)
    exp.tensor_layout()  # warm the cache
    return exp, c


def test_ablation_backward_tabulated(benchmark, setup):
    exp, c = setup
    benchmark(lambda: exp.phi.T @ c)


def test_ablation_backward_sumfact(benchmark, setup):
    exp, c = setup
    result = benchmark(exp.backward_sumfact, c)
    np.testing.assert_allclose(result, exp.phi.T @ c, atol=1e-11)


def test_ablation_gradient_tabulated(benchmark, setup):
    exp, c = setup
    benchmark(lambda: (exp.dphi1.T @ c, exp.dphi2.T @ c))


def test_ablation_gradient_sumfact(benchmark, setup):
    exp, c = setup
    d1, d2 = benchmark(exp.gradient_sumfact, c)
    np.testing.assert_allclose(d1, exp.dphi1.T @ c, atol=1e-10)
