"""Tier-2 benchmark: fault-injection degradation curves and recovery.

Runs the ``repro.apps.resilience_bench`` smoke harness end to end.  The
harness itself enforces the acceptance shape — monotone wall inflation
with loss rate on Fast-Ethernet, exactly flat on Myrinet, and a bitwise
crash-recovery round trip — so this test asserts report integrity and
the determinism the committed baseline relies on: every recorded value
is a virtual-clock or counter quantity, reproducible to the bit.
"""

import json

from repro.apps import resilience_bench


def test_resilience_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_resilience.json"
    ledger = tmp_path / "RUNLOG.jsonl"
    results = resilience_bench.main(
        ["--smoke", "--out", str(out), "--ledger", str(ledger)]
    )
    on_disk = json.loads(out.read_text())

    from repro.obs.runlog import RunLedger

    records = RunLedger(ledger).records(bench="resilience_bench")
    assert len(records) == 1
    assert records[0]["config"] == results["config"]
    assert on_disk["config"]["smoke"] is True
    assert set(on_disk["sweep"]) == {"fast-ethernet", "myrinet"}

    eth = on_disk["sweep"]["fast-ethernet"]
    myr = on_disk["sweep"]["myrinet"]
    rates = [p["loss_rate"] for p in eth]
    assert rates == sorted(rates) and rates[0] == 0.0
    # Lossy TCP pays: wall inflation never decreases with loss rate and
    # the top of the curve is strictly inflated with the retransmit
    # counters engaged (a low rate may draw zero losses in a smoke-sized
    # run); OS-bypass Myrinet never enters the retransmit path, so its
    # curve is identically 1.0 with zero counters.
    infl = [p["wall_inflation"] for p in eth]
    assert all(b <= a for b, a in zip(infl, infl[1:]))
    assert infl[-1] > infl[0] == 1.0
    assert eth[-1]["retransmits"] > 0 and eth[-1]["retransmitted_bytes"] > 0
    for p in myr:
        assert p["wall_inflation"] == 1.0 and p["retransmits"] == 0

    cr = on_disk["crash_restart"]
    assert cr["recovered_bitwise"] is True
    assert cr["restart_step"] <= cr["crash_step"]
    assert cr["survivor_outcome"] == "lost rank 1"

    # Determinism: a second run reproduces the report bit-for-bit —
    # the property that lets check_regression hard-gate these numbers.
    again = resilience_bench.run_bench(smoke=True)
    assert again == results
