"""Table 2 / Figures 13-14: NekTar-F parallel timestep benchmark.

Times one real timestep of the Fourier-parallel solver on a 2-rank
simmpi cluster (real Alltoall transposes, real FFTs, real per-mode
solves), and regenerates the Table 2 weak-scaling comparison and the
Figure 13/14 stage breakdowns from the models.
"""

import numpy as np
import pytest

from repro.apps.nektar_f_bench import figure13_14, table2
from repro.assembly.space import FunctionSpace
from repro.machines.catalog import CPUS, NETWORKS
from repro.mesh.generators import rectangle_quads
from repro.ns.nektar_f import NekTarF
from repro.parallel.simmpi import VirtualCluster


def _run_steps(nsteps: int) -> float:
    mesh = rectangle_quads(2, 1, 0.0, 2 * np.pi, 0.0, np.pi)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 4)
        bcs = {
            t: (
                lambda m, x, y, tt: 1.0 if m == 0 else 0.0,
                lambda m, x, y, tt: 0.0,
                lambda m, x, y, tt: 0.0,
            )
            for t in ("left",)
        }
        nf = NekTarF(
            comm,
            space,
            nz=4,
            nu=0.05,
            dt=5e-3,
            velocity_bcs=bcs,
            pressure_dirichlet=("right",),
            charge_compute=True,
        )
        nf.set_initial(
            lambda m, x, y, t: 1.0 if m == 0 else 0.0,
            lambda m, x, y, t: 0.0,
            lambda m, x, y, t: 0.0,
        )
        nf.run(nsteps)
        return comm.wall

    cluster = VirtualCluster(
        2, NETWORKS["RoadRunner, myr-internode"], cpu=CPUS["pentium-ii-450"]
    )
    return max(cluster.run(rank_fn))


def test_table2_nektar_f_step(benchmark):
    wall = benchmark.pedantic(_run_steps, args=(2,), rounds=2, iterations=1)
    assert wall > 0
    rows = table2()
    assert rows


def test_fig13_14_breakdowns(benchmark):
    fig = benchmark(figure13_14, nprocs=4)
    assert len(fig) == 8
