"""Figures 7-8: communication benchmarks on the simulated networks.

Times the *real execution* of the NetPIPE ping-pong and the paper's
synchronised MPI_Alltoall loop on simmpi clusters (threads + virtual
clocks), and regenerates the Figure 7/8 model curves.
"""

import numpy as np
import pytest

from repro.benchkernels.alltoall import figure8_series, simulated_alltoall
from repro.benchkernels.netpipe import (
    bandwidth_series,
    latency_series,
    simulated_pingpong,
)


@pytest.mark.parametrize(
    "network", ["Muses, LAM", "RoadRunner, myr-internode", "T3E"]
)
def test_fig7_pingpong(benchmark, network):
    result = benchmark(simulated_pingpong, network, 65536, 5)
    assert result > 0
    lat = latency_series()
    bw = bandwidth_series()
    assert network in lat and network in bw
    assert np.all(lat[network][1] > 0)


@pytest.mark.parametrize("nprocs", [4, 8])
def test_fig8_alltoall(benchmark, nprocs):
    result = benchmark(
        simulated_alltoall, "RoadRunner, myr-internode", nprocs, 32768, 3
    )
    assert result["avg_bandwidth_mb"] > 0
    series = figure8_series(nprocs)
    assert "T3E" in series
