"""Tier-2 benchmark: blocked vs per-RHS Helmholtz solves in NekTar-F.

Runs the ``repro.apps.solve_bench`` smoke harness end to end, asserting
the invariant the multi-RHS engine rests on: the blocked and per-RHS
solve paths charge byte-for-byte identical OpCounter totals per step
(the harness raises otherwise), and the report is well formed.  The
>= 3x stage 5+7 acceptance gate applies to the full paper-size run
(``BENCH_solve.json`` at the repo root), not the smoke configuration,
whose boundary systems are too small for the blocked sweeps to engage.
"""

import json

from repro.apps import solve_bench


def test_solve_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_solve.json"
    ledger = tmp_path / "RUNLOG.jsonl"
    results = solve_bench.main(
        ["--smoke", "--out", str(out), "--repeats", "1", "--ledger", str(ledger)]
    )
    assert results["charges_identical"]

    from repro.obs.runlog import RunLedger

    records = RunLedger(ledger).records(bench="solve_bench")
    assert len(records) == 1
    assert records[0]["config"] == results["config"]
    assert "solve_speedup" in records[0]["timings"]
    on_disk = json.loads(out.read_text())
    assert on_disk["config"]["smoke"] is True
    assert set(on_disk["stages"]) == {"5:pressure-solve", "7:viscous-solve"}
    for entry in on_disk["stages"].values():
        assert entry["blocked_s"] > 0.0 and entry["reference_s"] > 0.0
    assert on_disk["solve_speedup"] > 0.0
    assert on_disk["step_blocked_s"] > 0.0
