"""Tier-2 benchmark: blocked vs per-RHS Helmholtz solves in NekTar-F.

Runs the ``repro.apps.solve_bench`` smoke harness end to end, asserting
the invariant the multi-RHS engine rests on: the blocked and per-RHS
solve paths charge byte-for-byte identical OpCounter totals per step
(the harness raises otherwise), and the report is well formed.  The
>= 3x stage 5+7 acceptance gate applies to the full paper-size run
(``BENCH_solve.json`` at the repo root), not the smoke configuration,
whose boundary systems are too small for the blocked sweeps to engage.
"""

import json

from repro.apps import solve_bench


def test_solve_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_solve.json"
    results = solve_bench.main(
        ["--smoke", "--out", str(out), "--repeats", "1"]
    )
    assert results["charges_identical"]
    on_disk = json.loads(out.read_text())
    assert on_disk["config"]["smoke"] is True
    assert set(on_disk["stages"]) == {"5:pressure-solve", "7:viscous-solve"}
    for entry in on_disk["stages"].values():
        assert entry["blocked_s"] > 0.0 and entry["reference_s"] > 0.0
    assert on_disk["solve_speedup"] > 0.0
    assert on_disk["step_blocked_s"] > 0.0
