"""Ablation benchmarks for the design choices DESIGN.md calls out.

* static condensation vs. full banded factorisation (the Figure 10
  boundary/interior split put to work) — note that at Python scale the
  per-element loop overhead inverts the wall-time comparison even
  though condensation wins on flops (which is what the machine models
  price); the op-count assertion in the unit tests captures the real
  effect,
* RCM bandwidth reduction vs. natural dof ordering,
* multilevel vs. spectral vs. strip partitioning (edge-cut quality at
  fixed cost), feeding the ALE gather-scatter volume.
"""

import numpy as np
import pytest

from repro.assembly.condensation import CondensedOperator
from repro.assembly.global_system import AssembledOperator
from repro.assembly.operators import elemental_helmholtz
from repro.assembly.space import FunctionSpace
from repro.linalg.banded import BandedSPDSolver, bandwidth, to_banded
from repro.mesh.generators import bluff_body_mesh, rectangle_quads
from repro.mesh.partition import edge_cut, partition_mesh


@pytest.fixture(scope="module")
def helmholtz_setup():
    mesh = rectangle_quads(4, 4, 0.0, 1.0, 0.0, 1.0)
    space = FunctionSpace(mesh, 6)
    mats = [
        elemental_helmholtz(space.dofmap.expansion(e), space.geom[e], 1.0)
        for e in range(space.nelem)
    ]
    rhs = np.random.default_rng(0).standard_normal(space.ndof)
    return space, mats, rhs


def test_ablation_solve_full_banded(benchmark, helmholtz_setup):
    space, mats, rhs = helmholtz_setup
    op = AssembledOperator(space, mats)
    benchmark(op.solve, rhs)


def test_ablation_solve_condensed(benchmark, helmholtz_setup):
    space, mats, rhs = helmholtz_setup
    op = CondensedOperator(space, mats)
    x = benchmark(op.solve, rhs)
    ref = AssembledOperator(space, mats).solve(rhs)
    np.testing.assert_allclose(x, ref, atol=1e-8)
    # The boundary system is far narrower than the full one.
    assert op.bandwidth < AssembledOperator(space, mats).bandwidth


@pytest.fixture(scope="module")
def banded_matrices():
    # A 1-D Laplacian-like SPD matrix under two orderings: natural
    # (tridiagonal) vs a random symmetric permutation (wide band).
    n = 400
    a = 2.0 * np.eye(n)
    idx = np.arange(n - 1)
    a[idx, idx + 1] = a[idx + 1, idx] = -1.0
    a += 0.1 * np.eye(n)
    rng = np.random.default_rng(3)
    perm = rng.permutation(n)
    return a, a[np.ix_(perm, perm)]


def test_ablation_bandwidth_natural(benchmark, banded_matrices):
    a, _ = banded_matrices
    kd = bandwidth(a)
    solver = BandedSPDSolver.from_banded(to_banded(a, kd))
    benchmark(solver.solve, np.ones(a.shape[0]))
    assert kd == 1


def test_ablation_bandwidth_shuffled(benchmark, banded_matrices):
    _, a_perm = banded_matrices
    kd = bandwidth(a_perm)
    solver = BandedSPDSolver.from_banded(to_banded(a_perm, kd))
    benchmark(solver.solve, np.ones(a_perm.shape[0]))
    assert kd > 100  # the shuffled band is catastrophically wide


@pytest.fixture(scope="module")
def partition_mesh_fixture():
    return bluff_body_mesh(m=4, nr=2)


@pytest.mark.parametrize("method", ["strips", "spectral", "multilevel"])
def test_ablation_partitioners(benchmark, partition_mesh_fixture, method):
    mesh = partition_mesh_fixture
    parts = benchmark(partition_mesh, mesh, 8, method)
    cut = edge_cut(mesh.dual_graph(), parts)
    assert cut > 0
    if method == "multilevel":
        strips_cut = edge_cut(
            mesh.dual_graph(), partition_mesh(mesh, 8, "strips")
        )
        assert cut <= strips_cut
