"""Tier-2 benchmark: fused vs per-field NekTar-F stage-2 transposes.

Runs the ``repro.apps.fourier_bench`` smoke harness end to end and
asserts the invariants the fast path rests on: both stage-2 modes
produce bitwise-identical velocity state and byte-identical charge /
wire ledgers, while the fused pipeline pays exactly 2 Alltoalls per
rank per step against the per-field layout's 15.
"""

import pytest

from repro.apps import fourier_bench


@pytest.fixture(scope="module")
def smoke_results():
    return fourier_bench.run_bench(smoke=True)


def test_fourier_bench_smoke_invariants(smoke_results):
    r = smoke_results
    assert r["results_identical"] is True
    assert r["charges_identical"] is True
    assert r["wire_bytes_conserved"] is True
    assert r["fused"]["alltoalls_per_rank_step"] == 2.0
    assert r["per_field"]["alltoalls_per_rank_step"] == 15.0
    assert r["fused"]["wire_bytes_total"] == r["per_field"]["wire_bytes_total"]
    # Message aggregation: the fused mode sends exactly 2/15 of the
    # payloads (all per-step traffic is the two stage-2 transposes).
    assert (
        15 * r["fused"]["messages_total"]
        == 2 * r["per_field"]["messages_total"]
    )


def test_fourier_bench_virtual_latency_win(smoke_results):
    """Bytes are conserved, so the virtual-clock win is pure latency:
    fused must be strictly cheaper on the simulated network, by at most
    the 13 saved latency terms per step."""
    r = smoke_results
    assert r["fused"]["virtual_wall_s"] < r["per_field"]["virtual_wall_s"]


def test_fourier_bench_report_shape(smoke_results):
    for mode in ("fused", "per_field"):
        entry = smoke_results[mode]
        for key in (
            "step_s",
            "virtual_wall_s",
            "alltoalls_per_rank_step",
            "wire_bytes_total",
            "messages_total",
            "flops_total",
            "bytes_total",
        ):
            assert key in entry, key
    assert smoke_results["config"]["smoke"] is True
    assert smoke_results["step_speedup"] > 0
    for key in ("fused_s", "per_field_s", "speedup"):
        assert smoke_results["stage2"][key] > 0


def test_fourier_bench_ledger_append(tmp_path):
    from repro.obs.runlog import RunLedger

    out = tmp_path / "BENCH_fourier.json"
    ledger = tmp_path / "RUNLOG.jsonl"
    results = fourier_bench.main(
        ["--smoke", "--out", str(out), "--ledger", str(ledger)]
    )
    records = RunLedger(ledger).records(bench="fourier_bench")
    assert len(records) == 1
    assert records[0]["config"] == results["config"]
    assert "stage2.speedup" in records[0]["timings"]
