"""Tier-2 benchmark: event-scheduler scaling sweep.

Runs the ``repro.apps.scaling_bench`` smoke harness end to end.  The
harness enforces the acceptance shape itself — alltoall data correct at
every rank count, virtual Alltoall wall strictly increasing with P,
fault storm engaging the retransmit path and inflating the wall, and
engine parity at the oracle sizes — so this test asserts report
integrity and the bit-level determinism the committed
``BENCH_scaling_smoke.json`` baseline relies on.
"""

import json

from repro.apps import scaling_bench


def test_scaling_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_scaling.json"
    results = scaling_bench.main(["--smoke", "--out", str(out)])
    on_disk = json.loads(out.read_text())
    assert on_disk["config"]["smoke"] is True
    assert on_disk["config"]["rank_counts"] == [16, 64, 256]

    for sweep in ("ring", "alltoall"):
        cases = on_disk[sweep]
        assert [c["nprocs"] for c in cases] == [16, 64, 256]
        for c in cases:
            assert c["bytes_sent"] > 0 and c["messages"] > 0
            assert c["scheduler"]["scheduler.switches"] > 0
            # The dispatch path is O(P): the cooperative schedule never
            # needs more than a few dozen switches per rank.
            assert c["scheduler"]["scheduler.switches"] < 50 * c["nprocs"]

    # Virtual Alltoall cost grows with rank count — the model sees the
    # scaling wall the paper could not measure past 64 processors.
    walls = [c["wall_virtual"] for c in on_disk["alltoall"]]
    assert all(b < a for b, a in zip(walls, walls[1:]))

    storm = on_disk["fault_storm"]
    assert storm["retransmits"] > 0
    clean = next(c for c in on_disk["alltoall"] if c["nprocs"] == storm["nprocs"])
    assert storm["wall_virtual"] > clean["wall_virtual"]

    # The embedded differential oracle ran and agreed at every size.
    assert len(on_disk["parity"]) >= 2
    assert all(p["identical"] for p in on_disk["parity"])

    # Determinism: a second run reproduces everything except host
    # timings bit-for-bit — the property that lets check_regression
    # hard-gate the virtual clocks and scheduler statistics.
    def strip_host(obj):
        if isinstance(obj, dict):
            return {
                k: strip_host(v)
                for k, v in obj.items()
                if not k.endswith("_s")
            }
        if isinstance(obj, list):
            return [strip_host(v) for v in obj]
        return obj

    again = scaling_bench.run_bench(smoke=True)
    assert strip_host(again) == strip_host(results)
