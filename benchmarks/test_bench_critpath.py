"""Tier-2 benchmark: critical-path attribution in the scaling harness.

``scaling_bench --smoke`` attaches the critical-path recorder to its
largest Alltoall case and to the fault storm, and the committed
``BENCH_critpath_smoke.json`` baseline hard-gates every attribution
percentage.  This test asserts the shape that baseline relies on:
full-coverage attribution, counterfactual ordering, and bit-level
determinism of the whole critpath section across re-runs.
"""

import json

import pytest

from repro.apps import scaling_bench
from repro.obs.runlog import RunLedger


@pytest.fixture(scope="module")
def smoke_results():
    return scaling_bench.run_bench(smoke=True)


def test_critpath_section_shape(smoke_results):
    cp = smoke_results["critpath"]
    assert set(cp) == {"alltoall", "fault_storm"}
    for name, analysis in cp.items():
        assert analysis["coverage"] >= 0.95, name
        assert sum(analysis["resource_pct"].values()) == pytest.approx(100.0)
        total = sum(analysis["resource_seconds"].values())
        assert total == pytest.approx(analysis["covered"])


def test_critpath_counterfactual_ordering(smoke_results):
    cp = smoke_results["critpath"]["alltoall"]
    mk = cp["makespan"]
    cf = cp["counterfactuals"]
    # The fabric comparison answered from one recorded run: OS-bypass
    # Myrinet and the zero-latency limit both beat commodity Ethernet.
    assert cf["swap:myrinet"] < mk
    assert cf["zero_latency"] < mk

    storm = smoke_results["critpath"]["fault_storm"]
    scf = storm["counterfactuals"]
    # The storm is idle-dominated (retransmit waits); removing idle is
    # the counterfactual with teeth, and removing the stragglers can
    # only help.
    assert scf["zero_idle"] < storm["makespan"]
    assert scf["remove_straggler"] <= storm["makespan"]


def test_critpath_is_deterministic(smoke_results):
    again = scaling_bench.run_bench(smoke=True)
    assert json.loads(json.dumps(again["critpath"])) == json.loads(
        json.dumps(smoke_results["critpath"])
    )


def test_main_writes_critpath_and_ledger(tmp_path):
    out = tmp_path / "BENCH_scaling.json"
    cp_out = tmp_path / "BENCH_critpath.json"
    ledger = tmp_path / "RUNLOG.jsonl"
    results = scaling_bench.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--critpath-out",
            str(cp_out),
            "--ledger",
            str(ledger),
        ]
    )
    on_disk = json.loads(cp_out.read_text())
    assert on_disk == json.loads(json.dumps(results["critpath"]))

    records = RunLedger(ledger).records(bench="scaling_bench")
    assert len(records) == 1
    rec = records[0]
    assert rec["config"] == results["config"]
    assert rec["critpath"]["alltoall"]["coverage"] >= 0.95
    # The flattened report carries the virtual clocks as hard values
    # and the host clocks as timings.
    assert "alltoall.2.wall_virtual" in rec["values"]
    assert any(k.endswith("elapsed_s") for k in rec["timings"])
