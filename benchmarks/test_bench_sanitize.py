"""Tier-2 smoke: one NekTar-F step under the determinism sanitizer.

Runs the resilience-bench decaying-vortex case on 2 ranks with
``VirtualCluster(sanitize=True)`` and asserts the charge-parity
contract at application scale: the sanitized run's virtual clocks and
OpCounter totals are byte-identical to the unsanitized run's, the
vector-clock detector actually engaged (non-trivial clocks), and no
races are reported by the production solver stack.  Gated like the
other bench smokes: a parity drift here fails CI before it can corrupt
a BENCH baseline.
"""

from repro.apps.resilience_bench import CPU_NAME, SMOKE, _solver
from repro.linalg.counters import OpCounter
from repro.machines.catalog import CPUS, NETWORKS
from repro.obs.tracer import Trace
from repro.parallel.simmpi import VirtualCluster

NETWORK = NETWORKS["RoadRunner, eth-internode"]


def _rank_fn(comm):
    with OpCounter() as c:
        nf = _solver(comm, SMOKE)
        nf.run(1)
    return (
        comm.wall,
        comm.cpu_time,
        c.flops,
        c.bytes,
        c.calls,
        nf.kinetic_energy(),
    )


def _run(sanitize, trace=None):
    cluster = VirtualCluster(
        2,
        network=NETWORK,
        cpu=CPUS[CPU_NAME],
        sanitize=sanitize,
        trace=trace,
    )
    return cluster.run(_rank_fn)


def test_nektar_f_step_sanitized_charge_parity():
    plain = _run(sanitize=False)
    trace = Trace()
    sanitized = _run(sanitize=True, trace=trace)
    # Byte-identical clocks, op counts and solution — not approximately.
    assert sanitized == plain
    # The detector really ran: no races, and the message graph gave
    # every rank a non-trivial vector clock.
    assert trace.annotations["sanitize.races"] == 0
    vcs = trace.annotations["sanitize.vector_clocks"]
    assert set(vcs) == {0, 1}
    assert all(sum(vc) > 0 for vc in vcs.values())
