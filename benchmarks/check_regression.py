"""BENCH_*.json regression checker.

Compares a freshly produced benchmark report against a committed
baseline with per-metric tolerances:

* **timing metrics** (keys ending in ``_s`` or containing ``speedup``)
  are machine-dependent — drift is reported as a WARNING only, gated by
  a generous relative tolerance;
* **accounting metrics** (``flops``, ``bytes``, call counts,
  ``charges_identical``, the ``config`` block) are deterministic
  properties of the code — any drift is a HARD FAILURE, because it
  means the op-counted cost model silently changed.

Usage::

    python benchmarks/check_regression.py FRESH.json BASELINE.json
        [--timing-rtol 0.5]

Exit codes follow the repo-wide convention (``repro.util.cli``):
0 when no hard failures (warnings allowed), 1 on gate failure, 2 on
usage errors (missing or unparsable report files).  The committed
smoke baselines live in ``benchmarks/baselines/``; CI regenerates the
fresh reports with ``--smoke`` and compares smoke-vs-smoke.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

__all__ = ["compare", "main"]

# Timing keys: machine-dependent, warn-only.
TIMING_SUFFIXES = ("_s",)
TIMING_SUBSTRINGS = ("speedup",)


def is_timing_key(key: str) -> bool:
    return key.endswith(TIMING_SUFFIXES) or any(
        s in key for s in TIMING_SUBSTRINGS
    )


def _unit(leaf: str) -> str:
    """Display unit for a leaf key: seconds, speedup ratio, or none."""
    if leaf.endswith(TIMING_SUFFIXES):
        return " s"
    if any(s in leaf for s in TIMING_SUBSTRINGS):
        return "x"
    return ""


def _rel(fresh: float, baseline: float) -> str:
    """Signed relative drift suffix, e.g. ' (+12.3%)'; empty at zero ref."""
    if baseline == 0:
        return ""
    return f" ({100.0 * (fresh - baseline) / abs(baseline):+.1f}%)"


def _walk(fresh, baseline, path, warnings, failures, timing_rtol):
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            failures.append(f"{path}: expected mapping, got {type(fresh).__name__}")
            return
        for key in baseline:
            if key not in fresh:
                failures.append(f"{path}.{key}: missing from fresh report")
                continue
            _walk(
                fresh[key],
                baseline[key],
                f"{path}.{key}",
                warnings,
                failures,
                timing_rtol,
            )
        for key in fresh:
            if key not in baseline:
                warnings.append(f"{path}.{key}: new metric (not in baseline)")
        return

    if isinstance(baseline, list):
        # Recurse element-wise so timing keys inside list entries (the
        # sweep-of-cases shape: [{"nprocs": ..., "elapsed_s": ...}, ...])
        # keep their warn-only treatment.  A length change means the
        # sweep itself changed: hard failure.
        if not isinstance(fresh, list):
            failures.append(f"{path}: expected list, got {type(fresh).__name__}")
            return
        if len(fresh) != len(baseline):
            # Still walk the common prefix below: one sweep-length change
            # must not mask every other failing key in the report.
            failures.append(
                f"{path}: length changed {len(baseline)} -> {len(fresh)}"
            )
        for i, (f_item, b_item) in enumerate(zip(fresh, baseline)):
            _walk(f_item, b_item, f"{path}[{i}]", warnings, failures, timing_rtol)
        return

    leaf = path.rsplit(".", 1)[-1].split("[", 1)[0]
    if isinstance(baseline, (int, float)) and not isinstance(baseline, bool):
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            failures.append(f"{path}: {baseline!r} -> {fresh!r} (type change)")
            return
        unit = _unit(leaf)
        if is_timing_key(leaf):
            ref = abs(baseline)
            drift = abs(fresh - baseline) / ref if ref > 0 else abs(fresh)
            if drift > timing_rtol:
                warnings.append(
                    f"{path}: timing drift "
                    f"{baseline:.4g}{unit} -> {fresh:.4g}{unit}"
                    f"{_rel(fresh, baseline)}"
                    f" (> {100.0 * timing_rtol:.0f}% rtol)"
                )
        elif not math.isclose(fresh, baseline, rel_tol=0.0, abs_tol=0.0):
            failures.append(
                f"{path}: deterministic metric changed "
                f"{baseline!r} -> {fresh!r}{_rel(fresh, baseline)}"
            )
        return
    if fresh != baseline:
        failures.append(f"{path}: {baseline!r} -> {fresh!r}")


def compare(
    fresh: dict, baseline: dict, timing_rtol: float = 0.5
) -> tuple[list[str], list[str]]:
    """Returns (warnings, failures)."""
    warnings: list[str] = []
    failures: list[str] = []
    _walk(fresh, baseline, "$", warnings, failures, timing_rtol)
    return warnings, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--timing-rtol",
        type=float,
        default=0.5,
        help="relative tolerance before a timing drift WARNING (default 0.5)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = json.loads(Path(args.fresh).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        # Usage error (2), distinct from a gate failure (1): the gate
        # never ran, so CI must not read this as "regression detected".
        print(f"error: {exc}", file=sys.stderr)
        return 2
    warnings, failures = compare(fresh, baseline, timing_rtol=args.timing_rtol)

    for w in warnings:
        print(f"WARNING: {w}")
    for f in failures:
        print(f"FAILURE: {f}")
    if failures:
        print(
            f"{args.fresh} vs {args.baseline}: "
            f"{len(failures)} hard failure(s), {len(warnings)} warning(s)"
        )
        return 1
    print(
        f"{args.fresh} vs {args.baseline}: OK "
        f"({len(warnings)} timing warning(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
