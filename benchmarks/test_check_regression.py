"""Unit tests for the BENCH_*.json regression checker (tier-2)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from check_regression import compare, is_timing_key, main  # noqa: E402

BASELINE = {
    "config": {"elements": 24, "order": 5, "smoke": True},
    "ops": {
        "backward": {
            "batched_s": 1.0e-3,
            "per_element_s": 4.0e-3,
            "speedup": 4.0,
            "flops": 1000.0,
            "bytes": 8000.0,
        }
    },
    "charges_identical": True,
    "total_speedup": 4.0,
}


def test_timing_key_classification():
    assert is_timing_key("batched_s")
    assert is_timing_key("step_reference_s")
    assert is_timing_key("total_speedup")
    assert is_timing_key("speedup")
    assert not is_timing_key("flops")
    assert not is_timing_key("bytes")
    assert not is_timing_key("elements")
    assert not is_timing_key("charges_identical")


def test_identical_reports_pass():
    warnings, failures = compare(BASELINE, BASELINE)
    assert warnings == [] and failures == []


def test_timing_drift_warns_only():
    fresh = json.loads(json.dumps(BASELINE))
    fresh["ops"]["backward"]["batched_s"] *= 10.0
    warnings, failures = compare(fresh, BASELINE)
    assert failures == []
    assert any("batched_s" in w for w in warnings)
    # Within tolerance: silent.
    fresh["ops"]["backward"]["batched_s"] = 1.2e-3
    warnings, failures = compare(fresh, BASELINE, timing_rtol=0.5)
    assert warnings == [] and failures == []


def test_charge_drift_hard_fails():
    fresh = json.loads(json.dumps(BASELINE))
    fresh["ops"]["backward"]["flops"] += 1.0
    _warnings, failures = compare(fresh, BASELINE)
    assert any("flops" in f for f in failures)


def test_config_and_flag_drift_hard_fail():
    fresh = json.loads(json.dumps(BASELINE))
    fresh["config"]["elements"] = 25
    fresh["charges_identical"] = False
    _warnings, failures = compare(fresh, BASELINE)
    assert any("elements" in f for f in failures)
    assert any("charges_identical" in f for f in failures)


def test_missing_and_new_metrics():
    fresh = json.loads(json.dumps(BASELINE))
    del fresh["ops"]["backward"]["flops"]
    fresh["ops"]["backward"]["new_metric"] = 1.0
    warnings, failures = compare(fresh, BASELINE)
    assert any("missing" in f for f in failures)
    assert any("new metric" in w for w in warnings)


def test_main_exit_codes(tmp_path, capsys):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(BASELINE))
    fresh = json.loads(json.dumps(BASELINE))
    fresh["ops"]["backward"]["speedup"] = 1.0  # timing: warn only
    ok = tmp_path / "ok.json"
    ok.write_text(json.dumps(fresh))
    assert main([str(ok), str(base)]) == 0
    assert "WARNING" in capsys.readouterr().out
    fresh["ops"]["backward"]["bytes"] = 1.0  # accounting: hard fail
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(fresh))
    assert main([str(bad), str(base)]) == 1
    assert "FAILURE" in capsys.readouterr().out


def test_committed_smoke_baselines_exist():
    base_dir = Path(__file__).parent / "baselines"
    for name in ("BENCH_batched_smoke.json", "BENCH_solve_smoke.json"):
        doc = json.loads((base_dir / name).read_text())
        assert doc["config"]["smoke"] is True
        assert doc["charges_identical"] is True


LIST_BASELINE = {
    "sweep": [
        {"nprocs": 16, "elapsed_s": 0.1, "bytes_sent": 1000.0},
        {"nprocs": 64, "elapsed_s": 0.4, "bytes_sent": 4000.0},
    ]
}


def test_lists_recurse_timing_vs_accounting():
    # Host timing inside a list entry: warn only.
    fresh = json.loads(json.dumps(LIST_BASELINE))
    fresh["sweep"][1]["elapsed_s"] = 40.0
    warnings, failures = compare(fresh, LIST_BASELINE)
    assert failures == []
    assert any("sweep[1].elapsed_s" in w for w in warnings)
    # Accounting drift inside a list entry: hard failure.
    fresh = json.loads(json.dumps(LIST_BASELINE))
    fresh["sweep"][0]["bytes_sent"] += 8.0
    _warnings, failures = compare(fresh, LIST_BASELINE)
    assert any("sweep[0].bytes_sent" in f for f in failures)


def test_list_shape_changes_hard_fail():
    fresh = json.loads(json.dumps(LIST_BASELINE))
    fresh["sweep"].append({"nprocs": 256, "elapsed_s": 1.0, "bytes_sent": 1.0})
    _warnings, failures = compare(fresh, LIST_BASELINE)
    assert any("length changed 2 -> 3" in f for f in failures)
    _warnings, failures = compare({"sweep": "oops"}, LIST_BASELINE)
    assert any("expected list" in f for f in failures)


def test_committed_scaling_baseline_is_hard_gated():
    """Every non-``_s`` number in BENCH_scaling_smoke.json is a virtual
    clock, a byte/message ledger, or a scheduler counter — the gate must
    treat all of them as deterministic."""
    base_dir = Path(__file__).parent / "baselines"
    doc = json.loads((base_dir / "BENCH_scaling_smoke.json").read_text())
    assert doc["config"]["smoke"] is True
    mutated = json.loads(json.dumps(doc))
    mutated["alltoall"][0]["scheduler"]["scheduler.switches"] += 1.0
    _warnings, failures = compare(mutated, doc)
    assert any("scheduler.switches" in f for f in failures)
    mutated = json.loads(json.dumps(doc))
    mutated["alltoall"][0]["elapsed_s"] *= 100.0
    warnings, failures = compare(mutated, doc)
    assert failures == [] and any("elapsed_s" in w for w in warnings)
