"""Tier-2 benchmark: batched vs per-element elemental execution.

Times the hot FunctionSpace transforms in both execution modes on a
mid-size bluff-body discretisation (pytest-benchmark), and runs the
``repro.apps.batched_bench`` smoke harness end to end, asserting the
invariant the PR rests on: batched and per-element execution charge
byte-for-byte identical OpCounter totals, and batching is faster on
the per-timestep transforms.
"""

import json

import numpy as np
import pytest

from repro.apps import batched_bench
from repro.assembly.space import FunctionSpace
from repro.mesh.generators import bluff_body_mesh

ORDER = 8


@pytest.fixture(scope="module")
def spaces():
    mesh = bluff_body_mesh(m=4, nr=2)
    batched = FunctionSpace(mesh, ORDER, batched=True)
    per_elem = FunctionSpace(mesh, ORDER, batched=False)
    u = np.random.default_rng(0).standard_normal(batched.ndof)
    values = batched.backward(u)
    return batched, per_elem, u, values


def test_backward_batched(benchmark, spaces):
    batched, per_elem, u, _ = spaces
    result = benchmark(batched.backward, u)
    np.testing.assert_allclose(result, per_elem.backward(u), atol=1e-12)


def test_backward_per_element(benchmark, spaces):
    _, per_elem, u, _ = spaces
    benchmark(per_elem.backward, u)


def test_gradient_batched(benchmark, spaces):
    batched, _, u, _ = spaces
    benchmark(batched.gradient, u)


def test_gradient_per_element(benchmark, spaces):
    _, per_elem, u, _ = spaces
    benchmark(per_elem.gradient, u)


def test_load_vector_batched(benchmark, spaces):
    batched, _, _, values = spaces
    benchmark(batched.load_vector, values)


def test_load_vector_per_element(benchmark, spaces):
    _, per_elem, _, values = spaces
    benchmark(per_elem.load_vector, values)


def test_bench_harness_smoke(tmp_path):
    """The CI smoke run: the harness must complete, verify identical
    charges, show a transform win, and write a well-formed report."""
    out = tmp_path / "BENCH_batched.json"
    results = batched_bench.main(["--smoke", "--out", str(out), "--repeats", "1"])
    assert results["charges_identical"]
    assert results["transform_speedup"] > 1.0
    on_disk = json.loads(out.read_text())
    assert on_disk["config"]["smoke"] is True
    assert set(on_disk["ops"]) == {
        "backward",
        "gradient",
        "load_vector",
        "grad_load_vector",
        "helmholtz_setup",
        "condensation_setup",
    }
    for entry in on_disk["ops"].values():
        assert entry["batched_s"] > 0.0 and entry["per_element_s"] > 0.0
