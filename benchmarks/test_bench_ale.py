"""Table 3 / Figures 15-16: NekTar-ALE timestep benchmark.

Times one real timestep of the moving-mesh ALE solver (geometry
rebuild, PCG solves) and one distributed-CG Helmholtz solve (the ALE
parallel kernel: gather-scatter + allreduce), and regenerates the
Table 3 strong-scaling comparison and Figure 15/16 breakdowns.
"""

import numpy as np
import pytest

from repro.apps.ale_bench import figure15_16, table3
from repro.assembly.space import FunctionSpace
from repro.machines.catalog import NETWORKS
from repro.mesh.generators import rectangle_quads
from repro.mesh.partition import partition_mesh
from repro.ns.ale import ALENavierStokes2D
from repro.parallel.distributed import DistributedHelmholtz
from repro.parallel.simmpi import VirtualCluster


def wobble(x0, y0, t):
    s = np.sin(x0) * np.sin(y0)
    return (x0 + 0.03 * s * np.sin(3 * t), y0 + 0.03 * s * np.cos(2 * t))


@pytest.fixture(scope="module")
def ale_solver():
    mesh = rectangle_quads(2, 2, 0.0, np.pi, 0.0, np.pi)
    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    bcs = {t: (one, zero) for t in ("left", "right", "top", "bottom")}
    ns = ALENavierStokes2D(mesh, 4, nu=0.05, dt=5e-3, velocity_bcs=bcs, motion=wobble)
    ns.set_initial(one, zero)
    ns.run(2)
    return ns


def test_table3_ale_step(benchmark, ale_solver):
    benchmark.pedantic(ale_solver.step, rounds=2, iterations=1)
    rows = table3()
    assert rows


def _distributed_solve():
    mesh = rectangle_quads(4, 4, 0, 1, 0, 1)
    parts = partition_mesh(mesh, 4)

    def rank_fn(comm):
        space = FunctionSpace(mesh, 3)
        dh = DistributedHelmholtz(
            comm, space, parts, 1.0, ("left", "right"), tol=1e-8
        )
        xq, yq = space.coords()
        rhs = dh.assemble_rhs(np.sin(xq) * np.cos(yq))
        return dh.solve(rhs)

    net = NETWORKS["RoadRunner, myr-internode"]
    return VirtualCluster(4, net).run(rank_fn)


def test_fig15_16_distributed_cg(benchmark):
    res = benchmark.pedantic(_distributed_solve, rounds=2, iterations=1)
    assert len(res) == 4
    for p in (16, 64):
        fig = figure15_16(p)
        assert fig
