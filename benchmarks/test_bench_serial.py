"""Table 1 / Figure 12: serial bluff-body timestep benchmark.

Times one real timestep of the serial NekTar-analogue on the reduced
bluff-body mesh (the host plays the PC), and regenerates the Table 1
machine comparison and Figure 12 stage breakdown from the models.
"""

import pytest

from repro.apps.serial_bluff import figure12, reduced_solver, table1
from repro.ns.stages import STAGES


@pytest.fixture(scope="module")
def warm_solver():
    ns = reduced_solver(m=3, nr=1, order=5)
    ns.run(3)  # warm-up: factorisations, caches
    return ns


def test_table1_serial_timestep(benchmark, warm_solver):
    benchmark(warm_solver.step)
    rows = table1()
    assert len(rows) == 7
    by_name = {name: model for name, model, _ in rows}
    assert by_name["P2SC, 160MHz"] < by_name["Pentium II, 450MHz"]


def test_fig12_stage_breakdown(benchmark, warm_solver):
    warm_solver.reset_instrumentation()
    benchmark.pedantic(warm_solver.step, rounds=2, iterations=1)
    pct = warm_solver.stage_percentages("cpu")
    assert set(pct) == set(STAGES)
    fig = figure12()
    for machine, shares in fig.items():
        assert sum(shares.values()) == pytest.approx(100.0)
