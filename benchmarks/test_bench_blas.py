"""Figures 1-6: BLAS kernel benchmarks (the Section 3.1 measurements).

Times the real numpy-backed kernels on this host — the "PC" stand-in —
in each figure's regime (in-L1, in-L2, out-of-cache, small matrices),
and regenerates the multi-machine model curves.
"""

import numpy as np
import pytest

from repro.benchkernels.blas_bench import FIGURES, figure_series
from repro.linalg import blas

IN_L1 = 512  # 4 KB vectors
IN_MEM = 1 << 20  # 8 MB vectors


def _check_series(figure):
    for panel in ("left", "right"):
        series = figure_series(figure, panel)
        assert series
        for x, y in series.values():
            assert np.all(y > 0)


@pytest.mark.parametrize("n", [IN_L1, IN_MEM], ids=["L1", "mem"])
def test_fig1_dcopy(benchmark, rng, n):
    x, y = rng.standard_normal(n), np.empty(n)
    benchmark(blas.dcopy, x, y)
    _check_series(1)


@pytest.mark.parametrize("n", [IN_L1, IN_MEM], ids=["L1", "mem"])
def test_fig2_daxpy(benchmark, rng, n):
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    benchmark(blas.daxpy, 1.0001, x, y)
    _check_series(2)


@pytest.mark.parametrize("n", [IN_L1, IN_MEM], ids=["L1", "mem"])
def test_fig3_ddot(benchmark, rng, n):
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    benchmark(blas.ddot, x, y)
    _check_series(3)


@pytest.mark.parametrize("n", [32, 150], ids=["L1", "L2"])
def test_fig4_dgemv(benchmark, rng, n):
    a = rng.standard_normal((n, n))
    x, y = rng.standard_normal(n), np.zeros(n)
    benchmark(blas.dgemv, 1.0, a, x, 0.0, y)
    _check_series(4)


def test_fig5_dgemm_large(benchmark, rng):
    n = 75
    a, b = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    c = np.zeros((n, n))
    benchmark(blas.dgemm, 1.0, a, b, 0.0, c)
    _check_series(5)


def test_fig6_dgemm_small(benchmark, rng):
    # "most of the calls to dgemm ... are for small n (10 or less)"
    n = 10
    a, b = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    c = np.zeros((n, n))
    benchmark(blas.dgemm, 1.0, a, b, 0.0, c)
    _check_series(6)
