"""Fact or fiction? — regenerate the paper's whole comparison.

Prints every table and figure of the evaluation in one run: the BLAS
kernel curves (Figures 1-6), the network curves (Figures 7-8), the
serial application comparison (Table 1, Figure 12), the NekTar-F weak
scaling (Table 2, Figures 13-14) and the NekTar-ALE strong scaling
(Table 3, Figures 15-16), each next to the paper's published numbers.

Run:  python examples/cluster_comparison.py          (tables only)
      python examples/cluster_comparison.py --all    (+ figure series)
"""

import argparse

from repro.apps import ale_bench, kernel_report, nektar_f_bench, serial_bluff


def main(show_all: bool = False):
    print("#" * 72)
    print("# Kernel level")
    print("#" * 72)
    if show_all:
        for fig in (1, 2, 3, 4, 5, 6):
            print(kernel_report.report(fig, "left", max_rows=6))
            print()
        print(kernel_report.report(7, max_rows=6))
        print()
        for procs in (4, 8):
            print(kernel_report.report(8, procs=procs, max_rows=6))
            print()
    else:
        print("(figure series omitted; pass --all to print Figures 1-8)\n")

    print("#" * 72)
    print("# Application level: serial (Table 1, Figure 12)")
    print("#" * 72)
    serial_bluff.main(["--breakdown"])
    print()

    print("#" * 72)
    print("# Application level: NekTar-F (Table 2, Figures 13-14)")
    print("#" * 72)
    nektar_f_bench.main(["--breakdown"])
    print()

    print("#" * 72)
    print("# Application level: NekTar-ALE (Table 3, Figures 15-16)")
    print("#" * 72)
    ale_bench.main(["--breakdown", "16"])
    print()

    print("Conclusion (Section 5): PC clusters are less efficient than")
    print("supercomputers, yet not by far; Ethernet saturates above ~4-8")
    print("processors on Alltoall-heavy codes, Myrinet stays competitive.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--all", action="store_true")
    main(parser.parse_args().all)
