"""Flapping-wing ALE simulation: the paper's Section 4.2.2 application.

A NACA 4420 wing (Figure 11 right) heaves inside a body-fitted mesh.
The mesh velocity is *solved* from a Laplace problem driven by the
body's motion ("an extra Helmholtz solve, associated with the
calculation of the velocity of the moving mesh"), the convective term
uses u - w_mesh, and all systems use diagonally preconditioned CG —
exactly the NekTar-ALE structure behind Table 3.

Run:  python examples/flapping_wing_ale.py  [--steps N]
"""

import argparse

import numpy as np

from repro.mesh.generators import wing_mesh
from repro.ns.ale import ALENavierStokes2D
from repro.ns.stages import group_ale


def main(steps: int = 20):
    mesh = wing_mesh(m=6, nr=1)
    print(f"wing mesh: {mesh.nelements} elements, {mesh.nvertices} vertices")

    # Heaving motion: the wing oscillates vertically.
    amp, omega = 0.15, 2.0
    heave = lambda x, y, t: 0.0, lambda x, y, t: amp * omega * np.cos(omega * t)

    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    body_u = lambda x, y, t: 0.0  # noqa: E731
    body_v = lambda x, y, t: amp * omega * np.cos(omega * t)  # noqa: E731

    ns = ALENavierStokes2D(
        mesh,
        order=3,
        nu=0.05,
        dt=1e-2,
        velocity_bcs={"inflow": (one, zero), "wall": (body_u, body_v)},
        pressure_dirichlet=("outflow",),
        motion="solve",
        body_velocity=(body_u, body_v),
        outer_tags=("inflow", "outflow", "side"),
    )
    ns.set_initial(one, zero)

    wall_vids = sorted(
        {
            v
            for ei, le in mesh.boundary_sides("wall")
            for v in mesh.elements[ei].edge_vertices(le)
        }
    )

    print(f"\n{'step':>5} {'t':>7} {'KE':>10} {'wing y-shift':>13} {'CG iters':>20}")
    for k in range(steps):
        ns.step()
        if (k + 1) % max(1, steps // 10) == 0:
            shift = float(
                np.mean(mesh.vertices[wall_vids, 1])
                - np.mean(ns.vertices0[wall_vids, 1])
            )
            expect = amp * np.sin(omega * ns.t)
            iters = dict(ns.cg_iterations)
            print(
                f"{ns.step_count:>5} {ns.t:>7.2f} {ns.kinetic_energy():>10.3f} "
                f"{shift:>6.3f}/{expect:>6.3f} {str(iters):>20}"
            )

    groups = group_ale(ns.stage_percentages("cpu"))
    print("\nALE stage groups (Figures 15-16 instrument):")
    print(f"  a (steps 1-4, 6): {groups['a']:5.1f}%")
    print(f"  b (pressure solve): {groups['b']:5.1f}%")
    print(f"  c (viscous + mesh-velocity solves): {groups['c']:5.1f}%")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--steps", type=int, default=20)
    main(parser.parse_args().steps)
