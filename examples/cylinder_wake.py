"""Bluff-body wake DNS: the paper's serial application (Section 4.1).

Simulates the 2-D flow past a circular cylinder on the Figure 11 (left)
domain with the 7-stage splitting timestep, then prints the per-stage
breakdown — the reduced-size version of the run behind Table 1 and
Figure 12.  At this Reynolds number the wake is unsteady; watch the
cross-stream velocity behind the body oscillate (vortex shedding).

Run:  python examples/cylinder_wake.py  [--steps N]
"""

import argparse

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import bluff_body_mesh
from repro.ns.nektar2d import NavierStokes2D


def main(steps: int = 60):
    mesh = bluff_body_mesh(m=3, nr=1)
    space = FunctionSpace(mesh, 4)
    print(
        f"bluff-body mesh: {mesh.nelements} elements, order {space.order}, "
        f"{space.ndof} dofs ({space.ndof * 3} over u, v, p)"
    )

    one = lambda x, y, t: 1.0  # noqa: E731
    zero = lambda x, y, t: 0.0  # noqa: E731
    ns = NavierStokes2D(
        space,
        nu=0.02,  # Re = U D / nu = 50 on the diameter-1 cylinder
        dt=2e-2,
        velocity_bcs={"inflow": (one, zero), "wall": (zero, zero)},
        pressure_dirichlet=("outflow",),
    )
    ns.set_initial(one, zero)

    # Probe in the near wake (x = 2 diameters downstream) and a force
    # recorder on the cylinder (the drag/lift signals wake DNS is for).
    from repro.ns.forces import ForceRecorder

    xq, yq = space.coords()
    probe = np.unravel_index(
        np.argmin((xq - 2.0) ** 2 + yq**2), xq.shape
    )
    rec = ForceRecorder(ns, "wall")

    print(
        f"\n{'step':>5} {'t':>7} {'KE':>10} {'div':>10} "
        f"{'v(probe)':>10} {'drag':>8} {'lift':>8}"
    )
    for k in range(steps):
        ns.step()
        f = rec.record()
        if (k + 1) % max(1, steps // 12) == 0:
            _, v = ns.velocity()
            print(
                f"{ns.step_count:>5} {ns.t:>7.2f} {ns.kinetic_energy():>10.3f} "
                f"{ns.divergence_norm():>10.2e} {v[probe]:>10.4f} "
                f"{f.drag:>8.3f} {f.lift:>8.3f}"
            )

    # Write the final field for ParaView inspection.
    from repro.io import vertex_velocity_fields, write_vtk

    out = write_vtk(
        "cylinder_wake.vtk", mesh, vertex_velocity_fields(space, ns.u_hat, ns.v_hat)
    )
    print(f"\nwrote {out}")

    print("\nPer-stage CPU share of the timestep (Figure 12 instrument):")
    for stage, pct in ns.stage_percentages("cpu").items():
        print(f"  {stage:<18} {pct:5.1f}%")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--steps", type=int, default=60)
    main(parser.parse_args().steps)
