"""Quickstart: the spectral/hp element method in five minutes.

Builds a quadrilateral mesh, inspects the hierarchical modal expansion
(the paper's Figure 9), solves a Poisson problem, and demonstrates the
property the whole method is built around: *spectral* (exponential)
convergence under p-refinement, without remeshing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.mesh.generators import rectangle_quads
from repro.solvers.helmholtz import solve_poisson
from repro.spectral.expansions import QuadExpansion, TriExpansion


def main():
    print("=== 1. The modal expansion (Figure 9) ===")
    tri, quad = TriExpansion(4), QuadExpansion(4)
    print(f"triangle  at order 4: {tri.nmodes} modes -> {tri.mode_labels()}")
    print(f"quadrilateral order 4: {quad.nmodes} modes")
    print("ordering: vertices first, then edges, then interior (q fastest)\n")

    print("=== 2. Solve -lap u = f on a 2x2 quad mesh ===")
    mesh = rectangle_quads(2, 2, 0.0, 1.0, 0.0, 1.0)
    u_exact = lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
    f = lambda x, y: 2 * np.pi**2 * u_exact(x, y)  # noqa: E731

    print(f"{'order':>6} {'dofs':>6} {'L2 error':>12}")
    for order in (2, 3, 4, 5, 6, 7, 8):
        space = FunctionSpace(mesh, order)
        u_hat = solve_poisson(space, f, ("left", "right", "top", "bottom"))
        xq, yq = space.coords()
        err = space.norm_l2(space.backward(u_hat) - u_exact(xq, yq))
        print(f"{order:>6} {space.ndof:>6} {err:>12.3e}")
    print("\nExponential decay with order = spectral convergence: raising p")
    print("refines the solution on the SAME mesh (no h-refinement needed).")


if __name__ == "__main__":
    main()
