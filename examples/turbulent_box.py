"""Decaying turbulence in a triply periodic box.

The paper notes the Fourier transpose pattern "is extensively used in
any 2D or 3D FFT-based solver ... any spectral distributed memory
homogeneous turbulence 'box code' heavily relies in this type of
communication."  This example IS such a box code: doubly periodic
spectral/hp elements in x-y, Fourier in z (NekTar-F), running a random
solenoidal initial field on a 2-rank simulated cluster and watching the
energy decay and the spanwise spectrum fill.

Run:  python examples/turbulent_box.py  [--steps N]
"""

import argparse

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.machines.catalog import CPUS, NETWORKS
from repro.mesh.generators import rectangle_quads
from repro.ns.nektar_f import NekTarF
from repro.parallel.simmpi import VirtualCluster

NU = 0.02
RNG = np.random.default_rng(1999)
# Random solenoidal 2-D field from a streamfunction psi (u = dpsi/dy,
# v = -dpsi/dx), plus a spanwise w with z-structure in mode 1.
K = [(1, 1), (2, 1), (1, 2)]
AMPS = RNG.standard_normal((len(K), 2))


def psi(x, y):
    out = 0.0
    for (kx, ky), (a, b) in zip(K, AMPS):
        out = out + (a * np.sin(kx * x + b) * np.sin(ky * y - a)) / (kx**2 + ky**2)
    return out


def u_amp(m, x, y, t):
    if m == 0:
        h = 1e-6
        return complex((psi(x, y + h) - psi(x, y - h)) / (2 * h))
    return 0.0


def v_amp(m, x, y, t):
    if m == 0:
        h = 1e-6
        return complex(-(psi(x + h, y) - psi(x - h, y)) / (2 * h))
    return 0.0


def w_amp(m, x, y, t):
    if m == 1:
        return complex(0.2 * np.sin(x) * np.sin(y), 0.1 * np.cos(x + y))
    return 0.0


def rank_fn(comm, steps):
    mesh = rectangle_quads(2, 2, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    space = FunctionSpace(
        mesh, 5, periodic=[("left", "right"), ("bottom", "top")]
    )
    nf = NekTarF(comm, space, nz=4, nu=NU, dt=1e-2, velocity_bcs={},
                 charge_compute=True)
    nf.set_initial(u_amp, v_amp, w_amp)
    history = []
    for k in range(steps):
        nf.step()
        if (k + 1) % 2 == 0:
            history.append((nf.t, nf.kinetic_energy(), nf.mode_energies()))
    return history, comm.wall, comm.cpu_time


def main(steps=10):
    cluster = VirtualCluster(
        2, NETWORKS["RoadRunner, myr-internode"], cpu=CPUS["pentium-ii-450"]
    )
    results = cluster.run(rank_fn, steps)
    history, wall, cpu = results[0]
    print("triply periodic box: 2x2 elements order 5, Nz = 4, 2 ranks")
    print(f"virtual cluster time: cpu {cpu:.3f}s, wall {wall:.3f}s\n")
    print(f"{'t':>6} {'energy':>10}  spanwise spectrum E_m")
    e_prev = None
    for t, e, spec in history:
        spec_s = "  ".join(f"{s:9.4f}" for s in spec)
        print(f"{t:>6.2f} {e:>10.4f}  [{spec_s}]")
        if e_prev is not None:
            assert e < e_prev + 1e-12, "energy must decay (no forcing)"
        e_prev = e
    print("\nviscous dissipation drains the box; the nonlinear terms move")
    print("energy between the spanwise modes (the Alltoall-coupled step).")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--steps", type=int, default=10)
    main(parser.parse_args().steps)
