"""3-D wake on a simulated PC cluster: NekTar-F end to end.

Runs the Fourier x spectral/hp solver on a 2-rank simulated RoadRunner
(Myrinet) cluster: a Beltrami (exact Navier-Stokes) flow whose spanwise
structure lives in Fourier mode 1, so the run exercises the full
parallel path — per-mode solves, spectral z-derivatives, and the
MPI_Alltoall transposes of the non-linear step — while the virtual
clocks report what the paper's Table 2 measures: CPU vs wall-clock
time per step and the Figure 13/14 stage breakdown.

Run:  python examples/spanwise_turbulence_3d.py
"""

import numpy as np

from repro.assembly.space import FunctionSpace
from repro.machines.catalog import CPUS, NETWORKS
from repro.mesh.generators import rectangle_quads
from repro.ns.nektar_f import NekTarF
from repro.parallel.simmpi import VirtualCluster

NU, A, B, C = 0.05, 0.5, 0.4, 0.3


def g(t):
    return np.exp(-NU * t)


def u_amp(m, x, y, t):
    if m == 0:
        return complex(C * np.cos(y) * g(t))
    if m == 1:
        return complex(0.0, -0.5 * A * g(t))
    return 0.0


def v_amp(m, x, y, t):
    if m == 0:
        return complex(B * np.sin(x) * g(t))
    if m == 1:
        return complex(0.5 * A * g(t), 0.0)
    return 0.0


def w_amp(m, x, y, t):
    if m == 0:
        return complex((C * np.sin(y) + B * np.cos(x)) * g(t))
    return 0.0


def rank_fn(comm):
    mesh = rectangle_quads(2, 2, 0.0, 2 * np.pi, 0.0, 2 * np.pi)
    space = FunctionSpace(mesh, 6)
    tags = ("left", "right", "top", "bottom")
    nf = NekTarF(
        comm,
        space,
        nz=4,
        nu=NU,
        dt=5e-3,
        velocity_bcs={t: (u_amp, v_amp, w_amp) for t in tags},
        charge_compute=True,
    )
    nf.set_initial(u_amp, v_amp, w_amp)
    e0 = nf.kinetic_energy()
    nf.run(10)
    e1 = nf.kinetic_energy()
    return {
        "rank": comm.rank,
        "modes": list(nf.my_modes),
        "e0": e0,
        "e1": e1,
        "t": nf.t,
        "cpu": comm.cpu_time,
        "wall": comm.wall,
        "stages": nf.virtual.percentages("wall"),
    }


def main():
    cluster = VirtualCluster(
        2,
        NETWORKS["RoadRunner, myr-internode"],
        cpu=CPUS["pentium-ii-450"],
    )
    results = cluster.run(rank_fn)
    r0 = results[0]
    print("simulated machine: RoadRunner (PII-450 + Myrinet), 2 ranks")
    for r in results:
        print(
            f"  rank {r['rank']}: Fourier modes {r['modes']}, "
            f"virtual cpu {r['cpu']:.3f}s, wall {r['wall']:.3f}s"
        )
    decay = r0["e1"] / r0["e0"]
    expect = np.exp(-2 * NU * r0["t"])
    print(f"\nkinetic energy decay: {decay:.5f} (exact Beltrami: {expect:.5f})")
    print("\nvirtual per-stage wall share (Figure 13/14 instrument):")
    for stage, pct in r0["stages"].items():
        print(f"  {stage:<18} {pct:5.1f}%")
    print("\nstage 2 carries the Alltoall transposes -> its wall share is")
    print("what blows up on the Ethernet networks in Table 2.")


if __name__ == "__main__":
    main()
