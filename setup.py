"""Legacy-path shim: the sandbox lacks the `wheel` package, so PEP 660
editable installs fail; `pip install -e . --no-build-isolation` falls back
through this file (setup.py develop), which needs only setuptools.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
